//! The Garibaldi module: the façade the LLC controller talks to (Fig 6).

use crate::config::GaribaldiConfig;
use crate::dppn_table::DppnTable;
use crate::helper_table::HelperTable;
use crate::pair_table::PairTable;
use crate::threshold::ThresholdUnit;
use garibaldi_types::{CoreId, LineAddr, ThreadId, VirtAddr, LINE_BYTES};

/// Module-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaribaldiStats {
    /// Instruction LLC accesses observed.
    pub instr_accesses: u64,
    /// Instruction LLC misses observed.
    pub instr_misses: u64,
    /// Data LLC accesses observed.
    pub data_accesses: u64,
    /// Data accesses whose triggering instruction line was deduced
    /// (helper-table hit) and fed into the pair table.
    pub pair_updates: u64,
    /// Data accesses whose PC had no helper-table mapping.
    pub helper_misses: u64,
    /// Pairwise prefetches issued (§4.3).
    pub prefetches_issued: u64,
    /// Eviction queries answered "protect".
    pub protections: u64,
    /// Eviction queries answered "evict".
    pub declines: u64,
    /// Instruction misses that found a pair-table entry but were protected
    /// (no prefetch issued: a protected line is expected to be cached).
    pub protected_entry_misses: u64,
}

impl GaribaldiStats {
    /// Accumulates counters from another module slice (per-shard Garibaldi
    /// state in the sharded engine merges into one report).
    pub fn merge(&mut self, other: &GaribaldiStats) {
        self.instr_accesses += other.instr_accesses;
        self.instr_misses += other.instr_misses;
        self.data_accesses += other.data_accesses;
        self.pair_updates += other.pair_updates;
        self.helper_misses += other.helper_misses;
        self.prefetches_issued += other.prefetches_issued;
        self.protections += other.protections;
        self.declines += other.declines;
        self.protected_entry_misses += other.protected_entry_misses;
    }
}

/// The Garibaldi module attached to the LLC controller.
///
/// One instance serves the whole (shared) LLC; helper tables are per core.
/// The simulator drives it with three hooks mirroring Fig 6(b):
///
/// * [`GaribaldiModule::on_instr_access`] — every instruction access
///   reaching the LLC (returns pairwise-prefetch candidates on misses);
/// * [`GaribaldiModule::on_data_access`] — every demand data access
///   reaching the LLC;
/// * [`GaribaldiModule::should_protect`] — the QBS query during victim
///   selection.
#[derive(Debug)]
pub struct GaribaldiModule {
    cfg: GaribaldiConfig,
    pair: PairTable,
    dppn: DppnTable,
    helpers: Vec<HelperTable>,
    threshold: ThresholdUnit,
    stats: GaribaldiStats,
}

impl GaribaldiModule {
    /// Creates the module for an `n_cores`-core system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`GaribaldiConfig::validate`]).
    pub fn new(cfg: GaribaldiConfig, n_cores: usize) -> Self {
        cfg.validate().expect("valid Garibaldi configuration");
        Self {
            pair: PairTable::new(&cfg),
            dppn: DppnTable::new(cfg.dppn_entries()),
            helpers: (0..n_cores.max(1))
                .map(|_| HelperTable::new(cfg.helper_entries, cfg.helper_ways))
                .collect(),
            threshold: ThresholdUnit::new(&cfg, n_cores.max(1)),
            cfg,
            stats: GaribaldiStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &GaribaldiConfig {
        &self.cfg
    }

    /// Module statistics.
    pub fn stats(&self) -> &GaribaldiStats {
        &self.stats
    }

    /// Pair-table statistics.
    pub fn pair_stats(&self) -> &crate::pair_table::PairTableStats {
        self.pair.stats()
    }

    /// Current dynamic threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold.threshold()
    }

    /// Threshold unit (diagnostics).
    pub fn threshold_unit(&self) -> &ThresholdUnit {
        &self.threshold
    }

    /// `QBS_MAX_ATTEMPTS`: how many victims one eviction may protect.
    pub fn qbs_max_attempts(&self) -> u32 {
        if self.cfg.enable_protection {
            self.cfg.qbs_max_attempts
        } else {
            0
        }
    }

    /// Extra miss-path latency in cycles for `n` protection queries.
    pub fn qbs_latency(&self, queries: u32) -> u64 {
        self.cfg.qbs_lookup_cost * queries as u64
    }

    /// Instruction access at the LLC (Fig 7 step 1 + §4.3).
    ///
    /// Records the PC→frame mapping in the requester's helper table, tracks
    /// the PMU on demand misses, and — for unprotected demand misses with a
    /// pair-table entry — returns the paired data lines to prefetch.
    ///
    /// `demand` distinguishes demand fetches from instruction-prefetch
    /// requests; per §5.3 prefetched instruction lines still enter pair
    /// tracking (the helper table observes their PC via the normal
    /// translation path) but do not drive the PMU or pairwise prefetch.
    pub fn on_instr_access(
        &mut self,
        core: CoreId,
        pc: VirtAddr,
        il_line: LineAddr,
        hit: bool,
        demand: bool,
    ) -> Vec<LineAddr> {
        self.stats.instr_accesses += 1;
        if demand {
            self.threshold.on_llc_access(hit);
        }
        let n = self.helpers.len();
        let helper = &mut self.helpers[core.index() % n];
        helper.insert(pc.vpn(), il_line.ppn());

        if hit || !demand {
            return Vec::new();
        }
        self.stats.instr_misses += 1;
        self.threshold.record_instr_miss(ThreadId::from(core), pc);

        let mut prefetches = Vec::new();
        if self.pair.lookup(il_line).is_some() {
            let protected = self.pair.query_protect(
                il_line,
                self.threshold.color(),
                self.threshold.threshold(),
            );
            if protected {
                // A protected line missing is a tracking anomaly (it was
                // evicted before protection could act, or aliased).
                self.stats.protected_entry_misses += 1;
            } else if self.cfg.enable_prefetch {
                prefetches = self.pair.prefetch_candidates(il_line, &self.dppn);
                self.stats.prefetches_issued += prefetches.len() as u64;
            }
        }
        // Fig 10(b): the miss sets the old bits of the entry's DL fields.
        self.pair.on_instr_miss(il_line);
        prefetches
    }

    /// Demand data access at the LLC (Fig 7 steps 2–3).
    ///
    /// Deduces the triggering instruction line through the helper table and
    /// runs the pair-table allocate/update path. Prefetch fills must NOT be
    /// routed here (§5.3: prefetched data lines do not update the table).
    pub fn on_data_access(&mut self, core: CoreId, pc: VirtAddr, dl_line: LineAddr, hit: bool) {
        self.stats.data_accesses += 1;
        self.threshold.on_llc_access(hit);
        self.threshold.record_data_access(ThreadId::from(core), pc, hit);

        let n = self.helpers.len();
        let helper = &mut self.helpers[core.index() % n];
        let Some(i_ppn) = helper.lookup(pc.vpn()) else {
            self.stats.helper_misses += 1;
            return;
        };
        // IL_PA deduction (Fig 8): instruction frame + PC's in-page line.
        let il_line = LineAddr::from_page_parts(i_ppn, pc.line_page_offset() / LINE_BYTES);
        let dppn_idx = self.dppn.insert(dl_line.ppn());
        self.pair.update_on_data(
            il_line,
            hit,
            dppn_idx,
            dl_line.line_in_page() as u8,
            self.threshold.color(),
            self.threshold.threshold(),
        );
        self.stats.pair_updates += 1;
    }

    /// Stat-free protection probe: would the pair table defend `line`
    /// right now? Used to suppress host-policy bypass of instruction fills
    /// whose entries are protected (a defended line must be resident).
    pub fn would_protect(&self, line: LineAddr) -> bool {
        if !self.cfg.enable_protection {
            return false;
        }
        match self.pair.lookup(line) {
            Some(e) => self.pair.aged_cost(e, self.threshold.color()) > self.threshold.threshold(),
            None => false,
        }
    }

    /// QBS protection query for an instruction-line victim (§4.2).
    pub fn should_protect(&mut self, victim: LineAddr) -> bool {
        if !self.cfg.enable_protection {
            return false;
        }
        let protect =
            self.pair.query_protect(victim, self.threshold.color(), self.threshold.threshold());
        if protect {
            self.stats.protections += 1;
        } else {
            self.stats.declines += 1;
        }
        protect
    }

    /// Read access to the pair table (diagnostics, benches).
    pub fn pair_table(&self) -> &PairTable {
        &self.pair
    }

    /// Read access to the D_PPN table (diagnostics, benches).
    pub fn dppn_table(&self) -> &DppnTable {
        &self.dppn
    }

    /// Clears module statistics (end of warmup) while keeping all table
    /// contents and the learned threshold.
    pub fn reset_stats(&mut self) {
        self.stats = GaribaldiStats::default();
    }

    /// Helper-table hit rate across all cores (diagnostics).
    pub fn helper_hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for t in &self.helpers {
            let (th, tm) = t.stats();
            h += th;
            m += tm;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThresholdMode;

    fn module() -> GaribaldiModule {
        GaribaldiModule::new(GaribaldiConfig { color_period: 1000, ..Default::default() }, 2)
    }

    const PC: VirtAddr = VirtAddr::new(0x0040_0040);
    const IL: LineAddr = LineAddr::new(0x80001);
    const DL: LineAddr = LineAddr::new(0x90007);

    /// Walks the canonical pairing flow: I access teaches the helper table,
    /// D accesses raise the miss cost, eviction query protects.
    #[test]
    fn end_to_end_pairing_and_protection() {
        let mut g = module();
        let core = CoreId::new(0);
        g.on_instr_access(core, PC, IL, false, true);
        // Deduce the IL the module will reconstruct from (PC, I-PPN).
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        // Hot data accesses from this PC push the pair's cost up.
        for _ in 0..8 {
            g.on_data_access(core, PC, DL, true);
        }
        assert_eq!(g.stats().pair_updates, 8);
        let cost = g.pair_table().entry_for(il_deduced).miss_cost.get();
        assert!(cost > 32, "cost grew: {cost}");
        assert!(g.should_protect(il_deduced), "hot pair protected");
        assert_eq!(g.stats().protections, 1);
    }

    #[test]
    fn cold_pairs_are_not_protected() {
        let mut g = module();
        let core = CoreId::new(0);
        g.on_instr_access(core, PC, IL, false, true);
        for _ in 0..8 {
            g.on_data_access(core, PC, DL, false); // cold data
        }
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        assert!(!g.should_protect(il_deduced));
    }

    #[test]
    fn unprotected_miss_prefetches_paired_data() {
        let mut g = module();
        let core = CoreId::new(1);
        g.on_instr_access(core, PC, IL, false, true);
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        // Record the pair but keep it cold (data misses).
        for _ in 0..4 {
            g.on_data_access(core, PC, DL, false);
        }
        let prefetches = g.on_instr_access(core, PC, il_deduced, false, true);
        assert_eq!(prefetches, vec![DL], "paired cold data prefetched");
        assert!(g.stats().prefetches_issued >= 1);
    }

    #[test]
    fn protected_miss_does_not_prefetch() {
        let mut g = module();
        let core = CoreId::new(0);
        g.on_instr_access(core, PC, IL, false, true);
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        for _ in 0..10 {
            g.on_data_access(core, PC, DL, true); // hot ⇒ protected
        }
        let prefetches = g.on_instr_access(core, PC, il_deduced, false, true);
        assert!(prefetches.is_empty());
        assert_eq!(g.stats().protected_entry_misses, 1);
    }

    #[test]
    fn helper_miss_skips_pair_update() {
        let mut g = module();
        // Data access with no prior instruction access: nothing learned.
        g.on_data_access(CoreId::new(0), PC, DL, true);
        assert_eq!(g.stats().helper_misses, 1);
        assert_eq!(g.stats().pair_updates, 0);
    }

    #[test]
    fn helpers_are_per_core() {
        let mut g = module();
        g.on_instr_access(CoreId::new(0), PC, IL, false, true);
        // Core 1 never saw the instruction: its helper table misses.
        g.on_data_access(CoreId::new(1), PC, DL, true);
        assert_eq!(g.stats().helper_misses, 1);
        g.on_data_access(CoreId::new(0), PC, DL, true);
        assert_eq!(g.stats().pair_updates, 1);
    }

    #[test]
    fn disabled_protection_never_protects() {
        let cfg = GaribaldiConfig {
            enable_protection: false,
            threshold_mode: ThresholdMode::AllProtect,
            ..Default::default()
        };
        let mut g = GaribaldiModule::new(cfg, 1);
        let core = CoreId::new(0);
        g.on_instr_access(core, PC, IL, false, true);
        for _ in 0..10 {
            g.on_data_access(core, PC, DL, true);
        }
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        assert!(!g.should_protect(il_deduced));
        assert_eq!(g.qbs_max_attempts(), 0);
    }

    #[test]
    fn disabled_prefetch_returns_nothing() {
        let cfg = GaribaldiConfig { enable_prefetch: false, ..Default::default() };
        let mut g = GaribaldiModule::new(cfg, 1);
        let core = CoreId::new(0);
        g.on_instr_access(core, PC, IL, false, true);
        for _ in 0..4 {
            g.on_data_access(core, PC, DL, false);
        }
        let il_deduced = LineAddr::from_page_parts(IL.ppn(), PC.line_page_offset() / LINE_BYTES);
        assert!(g.on_instr_access(core, PC, il_deduced, false, true).is_empty());
    }

    #[test]
    fn qbs_latency_accounts_lookup_cost() {
        let g = module();
        assert_eq!(g.qbs_latency(0), 0);
        assert_eq!(g.qbs_latency(2), 2);
    }
}
