//! Decoupled D_PPN table (Fig 10a).
//!
//! DL_PA fields in the pair table store only a page *offset* plus a short
//! index into this shared, tagless table of data page-frame numbers — the
//! storage optimisation that keeps each DL_PA field at 23 bits. Entries are
//! replaced under a 3-bit saturating counter; because the table is tagless,
//! an index can be repointed while stale fields still reference it, which
//! simply turns the eventual prefetch into a harmless mis-prefetch (exactly
//! as in the hardware proposal).

use garibaldi_cache::SatCounter;
use garibaldi_types::PageNum;

#[derive(Debug, Clone, Copy)]
struct DppnEntry {
    ppn: u64,
    sctr: SatCounter,
    valid: bool,
}

/// The shared data-PPN table.
#[derive(Debug, Clone)]
pub struct DppnTable {
    entries: Vec<DppnEntry>,
    replacements: u64,
}

impl DppnTable {
    /// Creates a table with `entries` slots (power of two recommended).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "empty D_PPN table");
        Self {
            entries: vec![DppnEntry { ppn: 0, sctr: SatCounter::new(3, 0), valid: false }; entries],
            replacements: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no slots (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn index_of(&self, ppn: u64) -> usize {
        (ppn.wrapping_mul(0xd6e8_feb8_6659_fd93) >> 24) as usize % self.entries.len()
    }

    /// Perf-only host-CPU hint for `ppn`'s hashed slot (see
    /// [`garibaldi_types::hint`]); issued ahead of a batch of
    /// [`DppnTable::insert`]s so slot misses overlap. Inert.
    #[inline]
    pub fn prefetch_slot(&self, ppn: PageNum) {
        garibaldi_types::hint::prefetch_index(&self.entries, self.index_of(ppn.get()));
    }

    /// Records a data page frame, returning the index DL_PA fields should
    /// store. If the hashed slot holds a different frame, its counter is
    /// decremented and the frame only replaced once the counter exhausts
    /// (3-bit sctr replacement, "without an old bit", §5.3).
    pub fn insert(&mut self, ppn: PageNum) -> u16 {
        let idx = self.index_of(ppn.get());
        let e = &mut self.entries[idx];
        if !e.valid {
            *e = DppnEntry { ppn: ppn.get(), sctr: SatCounter::new(3, 4), valid: true };
        } else if e.ppn == ppn.get() {
            e.sctr.inc();
        } else {
            e.sctr.dec();
            if e.sctr.get() == 0 {
                *e = DppnEntry { ppn: ppn.get(), sctr: SatCounter::new(3, 4), valid: true };
                self.replacements += 1;
            }
        }
        idx as u16
    }

    /// Reads the frame currently stored at `idx`, if any.
    pub fn get(&self, idx: u16) -> Option<PageNum> {
        let e = self.entries.get(idx as usize)?;
        if e.valid {
            Some(PageNum::new(e.ppn))
        } else {
            None
        }
    }

    /// True if `idx` currently stores exactly `ppn` (prefetch validity).
    pub fn matches(&self, idx: u16, ppn: PageNum) -> bool {
        self.get(idx) == Some(ppn)
    }

    /// Replacement count (diagnostics).
    pub fn replacements(&self) -> u64 {
        self.replacements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = DppnTable::new(64);
        let idx = t.insert(PageNum::new(0xdeedb));
        assert_eq!(t.get(idx), Some(PageNum::new(0xdeedb)));
        assert!(t.matches(idx, PageNum::new(0xdeedb)));
    }

    #[test]
    fn conflicting_frame_needs_persistence() {
        let mut t = DppnTable::new(1); // force collisions
        let a = PageNum::new(10);
        let b = PageNum::new(20);
        t.insert(a);
        // One insertion of b decrements but does not replace.
        let idx = t.insert(b);
        assert_eq!(t.get(idx), Some(a));
        // Persistent b eventually claims the slot.
        for _ in 0..4 {
            t.insert(b);
        }
        assert_eq!(t.get(idx), Some(b));
        assert_eq!(t.replacements(), 1);
    }

    #[test]
    fn reinforcement_protects_entry() {
        let mut t = DppnTable::new(1);
        let a = PageNum::new(1);
        let b = PageNum::new(2);
        for _ in 0..8 {
            t.insert(a); // saturate a's counter
        }
        for _ in 0..5 {
            t.insert(b);
        }
        // a had counter 7; five decrements leave it alive.
        assert_eq!(t.get(0), Some(a));
    }

    #[test]
    fn out_of_range_index_is_none() {
        let t = DppnTable::new(4);
        assert_eq!(t.get(100), None);
    }
}
