//! **Garibaldi** — pairwise instruction-data management for shared LLCs.
//!
//! This crate implements the paper's contribution (ISCA'25): a hardware
//! module attached to the LLC controller that
//!
//! 1. tracks instruction–data pairs in a direct-mapped **pair table**,
//!    propagating data hotness (LLC hit/miss status) into a per-instruction
//!    **miss cost** counter (§4.1, Fig 5a);
//! 2. **selectively protects** high-cost instruction victims at eviction
//!    time through a QBS-style query (§4.2, Fig 5b);
//! 3. issues **pairwise data prefetches** while serving unprotected
//!    instruction misses (§4.3, Fig 5c);
//! 4. ages costs and adapts the protection threshold with an l-bit
//!    **coloring timer** and a small PMU measuring `P(D_miss | I_miss)`
//!    (§5.2, Fig 9).
//!
//! The module is host-policy agnostic: it plugs into any replacement policy
//! via [`garibaldi_cache::SetAssocCache::insert_with_guard`].
//!
//! # Examples
//!
//! ```
//! use garibaldi::{GaribaldiConfig, GaribaldiModule};
//! use garibaldi_types::{CoreId, LineAddr, VirtAddr};
//!
//! let mut g = GaribaldiModule::new(GaribaldiConfig::default(), 4);
//! let core = CoreId::new(0);
//! let pc = VirtAddr::new(0x40_0000);
//! let il = LineAddr::new(0x100);
//! // Instruction access teaches the helper table the PC→frame mapping…
//! g.on_instr_access(core, pc, il, false, true);
//! // …data accesses then update the pair table through that mapping.
//! g.on_data_access(core, pc, LineAddr::new(0x9000), true);
//! assert!(g.stats().pair_updates > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dppn_table;
pub mod helper_table;
pub mod module;
pub mod pair_table;
pub mod partition;
pub mod storage;
pub mod threshold;

pub use config::{GaribaldiConfig, ThresholdMode};
pub use dppn_table::DppnTable;
pub use helper_table::HelperTable;
pub use module::{GaribaldiModule, GaribaldiStats};
pub use pair_table::{DlField, PairEntry, PairTable};
pub use partition::instruction_way_mask;
pub use storage::StorageReport;
pub use threshold::ThresholdUnit;
