//! Garibaldi configuration (Table 2 defaults).

use serde::{Deserialize, Serialize};

/// How the protection threshold is managed (Fig 14b study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdMode {
    /// Periodic adjustment from `P(D_miss | I_miss)` vs the LLC miss rate
    /// (§5.2) — the paper's default.
    Dynamic,
    /// Fixed threshold expressed as a delta from the initial value
    /// (Fig 14b's −16 / +0 / +16 points).
    Fixed(i32),
    /// Threshold 0: every pair-table-resident instruction is protected.
    AllProtect,
}

/// Configuration of the Garibaldi module.
///
/// Defaults reproduce Table 2: a 2¹⁴-entry pair table with `k = 1` DL_PA
/// field, a 2¹³-entry D_PPN table, 128-entry 4-way helper tables, 6-bit miss
/// cost, 3-bit coloring, `QBS_MAX_ATTEMPTS = 2` and a dynamic threshold
/// initialised to 32.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaribaldiConfig {
    /// log2 of main pair-table entries (default 14).
    pub pair_entries_log2: u32,
    /// DL_PA fields per pair-table entry (`k`, default 1, max 4).
    pub k: u8,
    /// log2 of D_PPN table entries (default 13).
    pub dppn_entries_log2: u32,
    /// Helper-table entries per core (default 128).
    pub helper_entries: usize,
    /// Helper-table associativity (default 4).
    pub helper_ways: usize,
    /// Miss-cost counter width in bits (default 6).
    pub miss_cost_bits: u32,
    /// Initial miss cost on pair-table allocation (default 32 — the middle
    /// of the 6-bit range; Fig 14b expresses fixed thresholds as deltas
    /// from this value).
    pub init_cost: u32,
    /// Coloring timer width `l` in bits (default 3 → 8 colors).
    pub color_bits: u32,
    /// LLC accesses per color period (paper: 100 K; scaled experiments use
    /// a proportionally smaller period).
    pub color_period: u64,
    /// Threshold management mode.
    pub threshold_mode: ThresholdMode,
    /// Initial threshold value (default 32).
    pub init_threshold: u32,
    /// Recent instruction-miss PCs tracked per thread by the PMU (10).
    pub pmu_recent_pcs: usize,
    /// Maximum pair-table queries per eviction (`QBS_MAX_ATTEMPTS` = 2).
    pub qbs_max_attempts: u32,
    /// Cycles per pair-table query (`QBS_LOOKUP_COST` = 1).
    pub qbs_lookup_cost: u64,
    /// DL_PA field sctr replacement threshold (Fig 10b, "e.g., 4").
    pub dl_sctr_threshold: u32,
    /// Miss-cost increment applied per paired data *hit* (paper: 1).
    /// Scaled experiments use 2 to compensate for their ~30× lower
    /// per-entry update density versus the paper's 3.2 B-instruction runs;
    /// see DESIGN.md §5.
    pub cost_hit_step: u32,
    /// Miss-cost decrement applied per paired data *miss* (paper: 1).
    pub cost_miss_step: u32,
    /// Hysteresis margin on the §5.2 comparison: the threshold decreases
    /// while `P(D_miss|I_miss) < total_miss_rate + margin` and increases
    /// above it. A small positive margin keeps protection from flapping
    /// when the two rates are statistically indistinguishable.
    pub threshold_margin: f64,
    /// Enable selective instruction protection (§4.2).
    pub enable_protection: bool,
    /// Enable pairwise data prefetch (§4.3).
    pub enable_prefetch: bool,
}

impl Default for GaribaldiConfig {
    fn default() -> Self {
        Self {
            pair_entries_log2: 14,
            k: 1,
            dppn_entries_log2: 13,
            helper_entries: 128,
            helper_ways: 4,
            miss_cost_bits: 6,
            init_cost: 32,
            color_bits: 3,
            color_period: 100_000,
            threshold_mode: ThresholdMode::Dynamic,
            init_threshold: 32,
            pmu_recent_pcs: 10,
            qbs_max_attempts: 2,
            qbs_lookup_cost: 1,
            dl_sctr_threshold: 4,
            cost_hit_step: 1,
            cost_miss_step: 1,
            threshold_margin: 0.10,
            enable_protection: true,
            enable_prefetch: true,
        }
    }
}

impl GaribaldiConfig {
    /// Number of pair-table entries.
    pub fn pair_entries(&self) -> usize {
        1 << self.pair_entries_log2
    }

    /// Number of D_PPN table entries.
    pub fn dppn_entries(&self) -> usize {
        1 << self.dppn_entries_log2
    }

    /// Number of colors of the l-bit timer.
    pub fn colors(&self) -> u32 {
        1 << self.color_bits
    }

    /// Maximum miss-cost value.
    pub fn max_cost(&self) -> u32 {
        (1 << self.miss_cost_bits) - 1
    }

    /// A configuration scaled for small experiments: same structure sizes
    /// relative to the default, but a shorter color period so dynamic
    /// thresholding converges within scaled-down runs.
    pub fn scaled(color_period: u64) -> Self {
        Self { color_period, ..Self::default() }
    }

    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k > 4 {
            return Err(format!("k={} exceeds the 4 DL_PA fields", self.k));
        }
        if self.pair_entries_log2 == 0 || self.pair_entries_log2 > 24 {
            return Err("pair table size out of range".into());
        }
        if self.miss_cost_bits == 0 || self.miss_cost_bits > 16 {
            return Err("miss cost width out of range".into());
        }
        if self.init_cost > self.max_cost() || self.init_threshold > self.max_cost() {
            return Err("init cost/threshold exceed counter range".into());
        }
        if self.color_bits == 0 || self.color_bits > 8 {
            return Err("color width out of range".into());
        }
        if self.color_period == 0 {
            return Err("zero color period".into());
        }
        if self.cost_hit_step == 0 || self.cost_miss_step == 0 {
            return Err("zero cost step".into());
        }
        if self.helper_entries == 0
            || self.helper_ways == 0
            || self.helper_entries % self.helper_ways != 0
        {
            return Err("helper table geometry invalid".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = GaribaldiConfig::default();
        assert_eq!(c.pair_entries(), 16_384);
        assert_eq!(c.dppn_entries(), 8_192);
        assert_eq!(c.k, 1);
        assert_eq!(c.helper_entries, 128);
        assert_eq!(c.max_cost(), 63);
        assert_eq!(c.colors(), 8);
        assert_eq!(c.qbs_max_attempts, 2);
        c.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GaribaldiConfig { k: 9, ..Default::default() };
        assert!(c.validate().is_err());
        c.k = 1;
        c.init_threshold = 1000;
        assert!(c.validate().is_err());
        c.init_threshold = 32;
        c.helper_entries = 130; // not divisible by 4 ways
        assert!(c.validate().is_err());
    }
}
