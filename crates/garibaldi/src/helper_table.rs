//! Per-core helper table: PC-VPN → instruction-PPN mapping (Fig 8).
//!
//! Written on every instruction access that reaches the LLC; read on data
//! accesses so the LLC can deduce the physical line of the instruction that
//! triggered them (`IL_PA = I_PPN ‖ PC page offset`) without touching the
//! core's ITLB. Structured like a small set-associative TLB with 3-bit
//! saturating-counter replacement.

use garibaldi_cache::SatCounter;
use garibaldi_types::PageNum;

#[derive(Debug, Clone, Copy)]
struct HelperEntry {
    vpn: u64,
    ppn: u64,
    sctr: SatCounter,
    valid: bool,
}

impl HelperEntry {
    fn empty() -> Self {
        Self { vpn: 0, ppn: 0, sctr: SatCounter::new(3, 0), valid: false }
    }
}

/// A set-associative PC-VPN → I-PPN cache.
#[derive(Debug, Clone)]
pub struct HelperTable {
    sets: usize,
    ways: usize,
    entries: Vec<HelperEntry>,
    hits: u64,
    misses: u64,
}

impl HelperTable {
    /// Creates a helper table with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries > 0 && entries % ways == 0, "bad helper geometry");
        Self {
            sets: entries / ways,
            ways,
            entries: vec![HelperEntry::empty(); entries],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16) as usize % self.sets
    }

    /// Records (or refreshes) a VPN → PPN mapping.
    pub fn insert(&mut self, vpn: PageNum, ppn: PageNum) {
        let set = self.set_of(vpn.get());
        let base = set * self.ways;
        // Refresh on tag match.
        for w in 0..self.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.vpn == vpn.get() {
                e.ppn = ppn.get();
                e.sctr.inc();
                return;
            }
        }
        // Free way, else the way with the lowest counter.
        let victim = (0..self.ways).find(|&w| !self.entries[base + w].valid).unwrap_or_else(|| {
            (0..self.ways).min_by_key(|&w| self.entries[base + w].sctr.get()).expect("ways > 0")
        });
        self.entries[base + victim] = HelperEntry {
            vpn: vpn.get(),
            ppn: ppn.get(),
            sctr: SatCounter::new(3, 4),
            valid: true,
        };
    }

    /// Translates a PC VPN to the instruction page frame, if tracked.
    pub fn lookup(&mut self, vpn: PageNum) -> Option<PageNum> {
        let set = self.set_of(vpn.get());
        let base = set * self.ways;
        for w in 0..self.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.vpn == vpn.get() {
                e.sctr.inc();
                self.hits += 1;
                return Some(PageNum::new(e.ppn));
            }
        }
        self.misses += 1;
        None
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate of lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup() {
        let mut h = HelperTable::new(128, 4);
        h.insert(PageNum::new(0xff_f3cd19), PageNum::new(0x0d1a_b916));
        assert_eq!(h.lookup(PageNum::new(0xff_f3cd19)), Some(PageNum::new(0x0d1a_b916)));
        assert_eq!(h.lookup(PageNum::new(0xdead)), None);
        assert_eq!(h.stats(), (1, 1));
    }

    #[test]
    fn refresh_updates_ppn() {
        let mut h = HelperTable::new(8, 2);
        h.insert(PageNum::new(1), PageNum::new(100));
        h.insert(PageNum::new(1), PageNum::new(200));
        assert_eq!(h.lookup(PageNum::new(1)), Some(PageNum::new(200)));
    }

    #[test]
    fn capacity_bounded_with_replacement() {
        let mut h = HelperTable::new(8, 2);
        for v in 0..100u64 {
            h.insert(PageNum::new(v), PageNum::new(v + 1000));
        }
        let resident = (0..100u64).filter(|&v| h.lookup(PageNum::new(v)).is_some()).count();
        assert!(resident <= 8);
    }

    #[test]
    fn frequent_mappings_survive() {
        let mut h = HelperTable::new(8, 4);
        // Pin one hot mapping with repeated touches, then stream over others.
        for _ in 0..10 {
            h.insert(PageNum::new(42), PageNum::new(4242));
        }
        for v in 100..120u64 {
            h.insert(PageNum::new(v), PageNum::new(v));
        }
        assert_eq!(h.lookup(PageNum::new(42)), Some(PageNum::new(4242)));
    }

    #[test]
    #[should_panic(expected = "bad helper geometry")]
    fn bad_geometry_panics() {
        let _ = HelperTable::new(10, 4);
    }
}
