//! Dynamic threshold management and the coloring timer (§5.2, Fig 9).
//!
//! A synchronized l-bit timer advances one *color* per `N` LLC accesses.
//! During each color period a small PMU measures the conditional probability
//! `P(D_miss | I_miss)`: every instruction miss records its 64 B-aligned PC
//! in a per-thread 10-entry ring; data accesses whose PC matches a ring
//! entry update the conditional hit/miss counters. At the period boundary
//! the protection threshold moves by ±1:
//!
//! * `P(D_miss|I_miss)` **below** the overall LLC miss rate → data behind
//!   instruction misses is being served well → *decrease* the threshold
//!   (protect more instructions);
//! * **above** → protection is indiscriminate and hurting → *increase* it.

use crate::config::{GaribaldiConfig, ThresholdMode};
use garibaldi_types::{ThreadId, VirtAddr};

/// Per-thread ring of recent instruction-miss PCs (64 B-aligned).
#[derive(Debug, Clone)]
struct PcRing {
    pcs: Vec<u64>,
    next: usize,
}

impl PcRing {
    fn new(capacity: usize) -> Self {
        Self { pcs: vec![u64::MAX; capacity], next: 0 }
    }

    fn record(&mut self, pc_line: u64) {
        self.pcs[self.next] = pc_line;
        self.next = (self.next + 1) % self.pcs.len();
    }

    fn contains(&self, pc_line: u64) -> bool {
        self.pcs.contains(&pc_line)
    }

    fn clear(&mut self) {
        self.pcs.fill(u64::MAX);
        self.next = 0;
    }
}

/// The threshold unit: coloring timer + PMU + threshold register.
#[derive(Debug, Clone)]
pub struct ThresholdUnit {
    mode: ThresholdMode,
    threshold: u32,
    margin: f64,
    max_cost: u32,
    color: u8,
    colors: u32,
    period: u64,
    // Period-local counters.
    accesses_in_period: u64,
    misses_in_period: u64,
    cond_total: u64,
    cond_miss: u64,
    rings: Vec<PcRing>,
    // Lifetime diagnostics.
    color_ticks: u64,
    threshold_min: u32,
    threshold_max: u32,
}

impl ThresholdUnit {
    /// Creates the unit for `n_threads` hardware threads.
    pub fn new(cfg: &GaribaldiConfig, n_threads: usize) -> Self {
        let threshold = match cfg.threshold_mode {
            ThresholdMode::Dynamic => cfg.init_threshold,
            ThresholdMode::Fixed(delta) => {
                (cfg.init_threshold as i64 + delta as i64).clamp(0, cfg.max_cost() as i64) as u32
            }
            ThresholdMode::AllProtect => 0,
        };
        Self {
            mode: cfg.threshold_mode,
            threshold,
            margin: cfg.threshold_margin,
            max_cost: cfg.max_cost(),
            color: 0,
            colors: cfg.colors(),
            period: cfg.color_period,
            accesses_in_period: 0,
            misses_in_period: 0,
            cond_total: 0,
            cond_miss: 0,
            rings: vec![PcRing::new(cfg.pmu_recent_pcs.max(1)); n_threads.max(1)],
            color_ticks: 0,
            threshold_min: threshold,
            threshold_max: threshold,
        }
    }

    /// Current protection threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Current color of the l-bit timer.
    pub fn color(&self) -> u8 {
        self.color
    }

    /// Number of completed color periods.
    pub fn color_ticks(&self) -> u64 {
        self.color_ticks
    }

    /// (min, max) threshold observed over the run.
    pub fn threshold_range(&self) -> (u32, u32) {
        (self.threshold_min, self.threshold_max)
    }

    /// Records an instruction miss PC into the requester thread's ring.
    pub fn record_instr_miss(&mut self, thread: ThreadId, pc: VirtAddr) {
        let n = self.rings.len();
        self.rings[thread.index() % n].record(pc.get() & !63);
    }

    /// Records a data access; returns whether the PMU matched its PC
    /// against a recent instruction miss (diagnostics).
    pub fn record_data_access(&mut self, thread: ThreadId, pc: VirtAddr, hit: bool) -> bool {
        let n = self.rings.len();
        if self.rings[thread.index() % n].contains(pc.get() & !63) {
            self.cond_total += 1;
            if !hit {
                self.cond_miss += 1;
            }
            true
        } else {
            false
        }
    }

    /// Registers one LLC access (any type) with its hit/miss outcome; at
    /// each period boundary the threshold updates and the color advances.
    /// Returns `true` when a color tick happened.
    pub fn on_llc_access(&mut self, hit: bool) -> bool {
        self.accesses_in_period += 1;
        if !hit {
            self.misses_in_period += 1;
        }
        if self.accesses_in_period < self.period {
            return false;
        }
        self.end_period();
        true
    }

    fn end_period(&mut self) {
        if self.mode == ThresholdMode::Dynamic && self.cond_total > 0 {
            let p_cond = self.cond_miss as f64 / self.cond_total as f64;
            let p_total = self.misses_in_period as f64 / self.accesses_in_period.max(1) as f64;
            if p_cond < p_total + self.margin {
                self.threshold = self.threshold.saturating_sub(1);
            } else {
                self.threshold = (self.threshold + 1).min(self.max_cost);
            }
            self.threshold_min = self.threshold_min.min(self.threshold);
            self.threshold_max = self.threshold_max.max(self.threshold);
        }
        // Advance the color and reset the PMU (Fig 9b).
        self.color = ((self.color as u32 + 1) % self.colors) as u8;
        self.color_ticks += 1;
        self.accesses_in_period = 0;
        self.misses_in_period = 0;
        self.cond_total = 0;
        self.cond_miss = 0;
        for r in &mut self.rings {
            r.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period: u64) -> GaribaldiConfig {
        GaribaldiConfig { color_period: period, ..Default::default() }
    }

    #[test]
    fn fixed_mode_applies_delta() {
        let c = GaribaldiConfig { threshold_mode: ThresholdMode::Fixed(-16), ..Default::default() };
        assert_eq!(ThresholdUnit::new(&c, 1).threshold(), 16);
        let c = GaribaldiConfig { threshold_mode: ThresholdMode::Fixed(16), ..Default::default() };
        assert_eq!(ThresholdUnit::new(&c, 1).threshold(), 48);
        let c = GaribaldiConfig { threshold_mode: ThresholdMode::AllProtect, ..Default::default() };
        assert_eq!(ThresholdUnit::new(&c, 1).threshold(), 0);
    }

    #[test]
    fn color_advances_each_period_and_wraps() {
        let mut u = ThresholdUnit::new(&cfg(10), 2);
        for tick in 1..=9 {
            for _ in 0..10 {
                u.on_llc_access(true);
            }
            assert_eq!(u.color_ticks(), tick);
            assert_eq!(u.color(), (tick % 8) as u8);
        }
    }

    #[test]
    fn threshold_decreases_when_data_served_despite_i_misses() {
        let mut u = ThresholdUnit::new(&cfg(100), 1);
        let t = ThreadId::new(0);
        let pc = VirtAddr::new(0x4000);
        u.record_instr_miss(t, pc);
        // Conditional accesses all hit; overall misses are high.
        for i in 0..100 {
            if i < 20 {
                u.record_data_access(t, pc, true);
            }
            u.on_llc_access(i % 2 == 0); // 50% overall miss rate
        }
        assert_eq!(u.threshold(), 31, "threshold decreased to protect more");
    }

    #[test]
    fn threshold_increases_when_protection_hurts() {
        let mut u = ThresholdUnit::new(&cfg(100), 1);
        let t = ThreadId::new(0);
        let pc = VirtAddr::new(0x4000);
        u.record_instr_miss(t, pc);
        for i in 0..100 {
            if i < 20 {
                u.record_data_access(t, pc, false); // conditional misses
            }
            u.on_llc_access(true); // overall miss rate 0
        }
        assert_eq!(u.threshold(), 33);
    }

    #[test]
    fn no_adjustment_without_conditional_samples() {
        let mut u = ThresholdUnit::new(&cfg(10), 1);
        for _ in 0..10 {
            u.on_llc_access(false);
        }
        assert_eq!(u.threshold(), 32);
        assert_eq!(u.color_ticks(), 1);
    }

    #[test]
    fn pmu_ring_keeps_only_recent_pcs() {
        let mut u = ThresholdUnit::new(&cfg(1000), 1);
        let t = ThreadId::new(0);
        for i in 0..11u64 {
            u.record_instr_miss(t, VirtAddr::new(i * 64));
        }
        // PC 0 was pushed out of the 10-entry ring.
        assert!(!u.record_data_access(t, VirtAddr::new(0), true));
        assert!(u.record_data_access(t, VirtAddr::new(5 * 64), true));
    }

    #[test]
    fn rings_are_per_thread() {
        let mut u = ThresholdUnit::new(&cfg(1000), 2);
        u.record_instr_miss(ThreadId::new(0), VirtAddr::new(0x40));
        assert!(!u.record_data_access(ThreadId::new(1), VirtAddr::new(0x40), true));
        assert!(u.record_data_access(ThreadId::new(0), VirtAddr::new(0x40), true));
    }

    #[test]
    fn pmu_resets_at_period_boundary() {
        let mut u = ThresholdUnit::new(&cfg(5), 1);
        let t = ThreadId::new(0);
        u.record_instr_miss(t, VirtAddr::new(0x40));
        for _ in 0..5 {
            u.on_llc_access(true);
        }
        assert!(!u.record_data_access(t, VirtAddr::new(0x40), true), "ring cleared");
    }
}
