//! Property-based tests for the Garibaldi structures.

use garibaldi::{DppnTable, GaribaldiConfig, HelperTable, PairTable};
use garibaldi_types::{LineAddr, PageNum};
use proptest::prelude::*;

fn small_cfg(k: u8) -> GaribaldiConfig {
    GaribaldiConfig { pair_entries_log2: 6, k, ..Default::default() }
}

proptest! {
    /// Aged cost never exceeds the raw cost and protection queries never
    /// mutate the entry, for arbitrary update/query interleavings.
    #[test]
    fn aging_is_monotone_and_queries_are_pure(
        ops in prop::collection::vec((0u64..256, prop::bool::ANY, 0u8..8), 1..300),
        threshold in 0u32..64,
    ) {
        let mut t = PairTable::new(&small_cfg(1));
        for (line, hit, color) in ops {
            let il = LineAddr::new(line);
            t.update_on_data(il, hit, 0, (line % 64) as u8, color, threshold);
            let e = *t.entry_for(il);
            if e.valid {
                for qc in 0..8u8 {
                    prop_assert!(t.aged_cost(&e, qc) <= e.miss_cost.get());
                    let before = *t.entry_for(il);
                    t.query_protect(il, qc, threshold);
                    prop_assert_eq!(before, *t.entry_for(il), "query mutated the entry");
                }
            }
        }
    }

    /// DL fields never exceed k and never hold duplicate data lines.
    #[test]
    fn dl_fields_bounded_and_unique(
        k in 1u8..4,
        refs in prop::collection::vec((0u16..32, 0u8..64), 1..200),
    ) {
        let mut t = PairTable::new(&small_cfg(k));
        let il = LineAddr::new(42);
        for (dppn_idx, lip) in refs {
            t.update_on_data(il, true, dppn_idx, lip, 0, 32);
            let e = t.entry_for(il);
            let valid: Vec<_> = e.dl.iter().filter(|f| f.valid).collect();
            prop_assert!(valid.len() <= k as usize);
            for (i, a) in valid.iter().enumerate() {
                for b in &valid[i + 1..] {
                    prop_assert!(
                        (a.dppn_idx, a.line_in_page) != (b.dppn_idx, b.line_in_page),
                        "duplicate DL field"
                    );
                }
            }
        }
    }

    /// The helper table is bounded and returns only mappings it was taught.
    #[test]
    fn helper_table_returns_only_taught_mappings(
        inserts in prop::collection::vec((0u64..512, 0u64..4096), 1..300),
    ) {
        let mut h = HelperTable::new(32, 4);
        let mut taught = std::collections::HashMap::new();
        for (vpn, ppn) in inserts {
            h.insert(PageNum::new(vpn), PageNum::new(ppn));
            taught.insert(vpn, ppn); // latest mapping wins
        }
        for (&vpn, _) in taught.iter() {
            if let Some(got) = h.lookup(PageNum::new(vpn)) {
                prop_assert_eq!(got.get(), taught[&vpn], "stale/foreign mapping returned");
            }
        }
    }

    /// The D_PPN table always returns the frame currently stored at the
    /// index it handed out — or a detectable repointed one, never garbage.
    #[test]
    fn dppn_indices_resolve(frames in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut t = DppnTable::new(64);
        for ppn in frames {
            let idx = t.insert(PageNum::new(ppn));
            let got = t.get(idx);
            prop_assert!(got.is_some(), "handed-out index must resolve");
            prop_assert!((idx as usize) < t.len());
        }
    }

    /// Entry replacement preserves exactly one of: old entry (preserved) or
    /// new entry (replaced) — never a mix of both tags/costs.
    #[test]
    fn collision_resolution_is_atomic(
        cost_pumps in 0u32..20,
        color in 0u8..8,
    ) {
        let mut t = PairTable::new(&small_cfg(1));
        // Two lines guaranteed to collide in a 64-entry table: scan for one.
        let a = LineAddr::new(1);
        let mut b = LineAddr::new(2);
        loop {
            t.update_on_data(a, true, 0, 0, 0, 32);
            let before = *t.entry_for(a);
            t.update_on_data(b, true, 1, 1, color, 32);
            let after = *t.entry_for(a);
            if after.il_line == b {
                // replaced: fresh entry with init-derived cost
                prop_assert!(after.miss_cost.get() >= 32);
                break;
            } else if after.il_line == a {
                if before.il_line == a && after.color == color && cost_pumps == 0 {
                    // preserved with refreshed color (or untouched when b
                    // mapped to a different slot).
                }
                b = LineAddr::new(b.get() + 1);
                if b.get() > 4096 { break; }
            } else {
                break;
            }
        }
    }
}
