//! Shared-data coherence figure — per-workload speedup over LRU under the
//! homogeneous shared-memory family (barnes/ocean/radix/raytrace), plus the
//! coherence traffic each scheme sustains (invalidations per kilo-instruction).
//!
//! The shared family is the only workload class that exercises the MESI
//! directory path; the second table exists to make a silent regression of
//! that path (inval rate collapsing to ~0) visible at a glance. Serial
//! golden baselines for these profiles live in
//! `crates/sim/tests/golden/coherence_baselines.jsonl` and are enforced by
//! the `coherence_differential` test battery.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Drrip),
        LlcScheme::with_garibaldi(PolicyKind::Drrip),
        LlcScheme::plain(PolicyKind::Hawkeye),
        LlcScheme::with_garibaldi(PolicyKind::Hawkeye),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    // Each job reports (harmonic-mean IPC, invalidations per kilo-instr).
    let mut jobs: Vec<Box<dyn FnOnce() -> (f64, f64) + Send>> = Vec::new();
    for &w in registry::SHARED_NAMES.iter() {
        for scheme in &schemes {
            let scheme = scheme.clone();
            jobs.push(Box::new(move || {
                let r = run_homogeneous(&scale, scheme, w, 42);
                let inval_pki = r.invalidations as f64 * 1000.0 / r.total_instrs().max(1) as f64;
                (r.harmonic_mean_ipc(), inval_pki)
            }));
        }
    }
    let flat = parallel_runs(jobs);

    let labels: Vec<String> = schemes.iter().skip(1).map(|s| s.label()).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(labels.iter().map(|s| s.as_str()));

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    let mut rows: Vec<Vec<String>> = registry::SHARED_NAMES
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let base = flat[wi * schemes.len()].0;
            let mut row = vec![w.to_string()];
            for si in 1..schemes.len() {
                let sp = speedup_over(base, flat[wi * schemes.len() + si].0);
                per_scheme[si - 1].push(sp);
                row.push(format!("{:.4}", sp));
            }
            row
        })
        .collect();
    let mut gm_row = vec!["geomean".to_string()];
    for v in &per_scheme {
        gm_row.push(format!("{:.4}", geomean(v)));
    }
    rows.push(gm_row);
    print_table(
        "Shared coherence: speedup over LRU, homogeneous shared workloads",
        &headers,
        &rows,
    );
    write_csv("fig_shared_coherence_speedup.csv", &headers, &rows);

    let inval_labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    let mut inval_headers: Vec<&str> = vec!["workload"];
    inval_headers.extend(inval_labels.iter().map(|s| s.as_str()));
    let inval_rows: Vec<Vec<String>> = registry::SHARED_NAMES
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let mut row = vec![w.to_string()];
            for si in 0..schemes.len() {
                row.push(format!("{:.4}", flat[wi * schemes.len() + si].1));
            }
            row
        })
        .collect();
    print_table("Shared coherence: invalidations per kilo-instr", &inval_headers, &inval_rows);
    write_csv("fig_shared_coherence_invals.csv", &inval_headers, &inval_rows);
    println!("(inval rates must stay > 0: a zero row means the MESI directory path went dormant)");
}
