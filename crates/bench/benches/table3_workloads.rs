//! Table 3 — the benchmark registry: every evaluated workload with the
//! synthetic-profile characteristics that stand in for the original suites.

use garibaldi_bench::*;
use garibaldi_trace::registry;

fn main() {
    let headers = [
        "workload",
        "class",
        "text_MB",
        "hot_MB",
        "cold_MB",
        "func_zipf",
        "hot_frac",
        "refs/line",
        "mpki",
    ];
    let rows: Vec<Vec<String>> = registry::all_workloads()
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:?}", p.class),
                format!("{:.2}", p.instr_footprint_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", p.hot_footprint_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", p.cold_data_lines as f64 * 64.0 / (1024.0 * 1024.0)),
                format!("{:.2}", p.func_zipf),
                format!("{:.2}", p.hot_frac),
                format!("{:.2}", p.data_refs_per_line),
                format!("{:.1}", p.branch_mpki),
            ]
        })
        .collect();
    print_table("Table 3: workload registry (synthetic stand-ins)", &headers, &rows);
    write_csv("table3_workloads.csv", &headers, &rows);
    println!(
        "\n(paper suites: DaCapo cassandra/tomcat/kafka/xalan; Renaissance finagle-http/dotty;"
    );
    println!(
        " OLTP-Bench tpcc/ycsb/twitter/voter/smallbank/tatp/sibench/noop; Chipyard verilator; BrowserBench speedometer2.0)"
    );
}
