//! Table 1 — the baseline system configuration, as encoded by
//! `SystemConfig::paper_baseline()` and the scaled derivation used by the
//! harness.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;

fn describe(name: &str, cfg: &SystemConfig) {
    println!("\n== Table 1: {name} ==");
    println!("cores:            {}", cfg.cores);
    println!(
        "L1I / L1D:        {} KB / {} KB, {}-way, {} cycles",
        cfg.l1i_bytes / 1024,
        cfg.l1d_bytes / 1024,
        cfg.l1_ways,
        cfg.l1_latency
    );
    println!(
        "L2 (per {} cores): {} KB, {}-way, {} cycles",
        cfg.l2_cluster_size,
        cfg.l2_bytes / 1024,
        cfg.l2_ways,
        cfg.l2_latency
    );
    println!(
        "LLC (shared):     {} KB, {}-way, {} cycles, non-inclusive",
        cfg.llc_bytes / 1024,
        cfg.llc_ways,
        cfg.llc_latency
    );
    println!(
        "DRAM:             {} channels, {} cycles access, occupancy {} cycles/line, queue depth {}",
        cfg.dram.channels,
        cfg.dram.access_latency,
        cfg.dram.transfer_occupancy,
        cfg.dram.queue_depth
    );
    println!(
        "core model:       base CPI {}, branch penalty {}, ROB shadow {}, MLP overlap {}",
        cfg.base_cpi, cfg.branch_penalty, cfg.rob_shadow, cfg.mlp_overlap
    );
    println!(
        "prefetchers:      L1I temporal+runahead={}, L1D next-line={}, L2 GHB={}",
        cfg.l1i_prefetcher, cfg.l1d_prefetcher, cfg.l2_prefetcher
    );
}

fn main() {
    describe("paper baseline (Table 1)", &SystemConfig::paper_baseline());
    let scale = ExperimentScale::from_env();
    let scaled = SystemConfig::scaled(&scale, LlcScheme::plain(PolicyKind::Lru));
    describe(&format!("harness scale (factor {}, {} cores)", scale.factor, scale.cores), &scaled);
    let rows = vec![vec![
        scaled.cores.to_string(),
        scaled.llc_bytes.to_string(),
        scaled.llc_ways.to_string(),
        scaled.l2_bytes.to_string(),
    ]];
    write_csv("table1_config.csv", &["cores", "llc_bytes", "llc_ways", "l2_bytes"], &rows);
}
