//! Fig 17 — LLC associativity sensitivity: {6, 12, 24, 48} ways at fixed
//! capacity, normalized to LRU at 12 ways.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::WorkloadMix;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let server8 =
        ["noop", "sibench", "twitter", "voter", "finagle-http", "tomcat", "verilator", "tpcc"];
    let ways = [6usize, 12, 24, 48];
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for &w in &server8 {
        for &a in &ways {
            for scheme in &schemes {
                let scheme = scheme.clone();
                jobs.push(Box::new(move || {
                    let mut cfg = SystemConfig::scaled(&scale, scheme);
                    cfg.llc_ways = a;
                    let runner = SimRunner::new(cfg, WorkloadMix::homogeneous(w, scale.cores), 42);
                    bench_run(&runner, scale.records_per_core, scale.warmup_per_core)
                        .harmonic_mean_ipc()
                }));
            }
        }
    }
    let flat = parallel_runs(jobs);

    let headers = ["workload", "ways", "lru", "mockingjay", "mockingjay+G"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (wi, w) in server8.iter().enumerate() {
        let base = flat[wi * ways.len() * 3 + 3]; // LRU at 12 ways
        for (ai, a) in ways.iter().enumerate() {
            let at = |si: usize| flat[wi * ways.len() * 3 + ai * 3 + si];
            rows.push(vec![
                w.to_string(),
                a.to_string(),
                format!("{:.4}", speedup_over(base, at(0))),
                format!("{:.4}", speedup_over(base, at(1))),
                format!("{:.4}", speedup_over(base, at(2))),
            ]);
        }
    }
    print_table(
        "Fig 17: LLC associativity sensitivity (normalized to LRU at 12w)",
        &headers,
        &rows,
    );
    write_csv("fig17_associativity.csv", &headers, &rows);
    println!("(paper shape: Garibaldi's margin over Mockingjay peaks at 48 ways, +7.1%)");
}
