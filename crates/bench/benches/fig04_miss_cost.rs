//! Fig 4(c) — instruction miss rates conditioned on the paired data
//! access's outcome: `MissRate_DataHit` vs `MissRate_DataMiss` per server
//! workload, plus the §3.2 lifecycle-sharing measurement (fraction of data
//! lines shared by multiple instructions during residency).

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::{registry, WorkloadMix};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let jobs: Vec<Box<dyn FnOnce() -> (String, RunResult) + Send>> = registry::SERVER_NAMES
        .iter()
        .map(|&w| {
            Box::new(move || {
                let mut cfg =
                    SystemConfig::scaled(&scale, LlcScheme::plain(PolicyKind::Mockingjay));
                cfg.profile_reuse = true;
                let runner = SimRunner::new(cfg, WorkloadMix::homogeneous(w, scale.cores), 42);
                let r = bench_run(&runner, scale.records_per_core, scale.warmup_per_core);
                (w.to_string(), r)
            }) as _
        })
        .collect();
    let results = parallel_runs(jobs);

    let headers =
        ["workload", "MissRate_DataHit", "MissRate_DataMiss", "pairs", "shared_lifecycles"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(w, r)| {
            vec![
                w.clone(),
                format!("{:.3}", r.conditional.miss_rate_data_hit()),
                format!("{:.3}", r.conditional.miss_rate_data_miss()),
                r.conditional.pairs().to_string(),
                format!("{:.3}", r.reuse.map(|x| x.shared_lifecycle_fraction).unwrap_or(0.0)),
            ]
        })
        .collect();
    print_table("Fig 4(c): instruction miss rate by paired-data outcome", &headers, &rows);
    write_csv("fig04_miss_cost.csv", &headers, &rows);

    let xalan = results.iter().find(|(w, _)| w == "xalan").expect("xalan present");
    println!(
        "\nxalan exception (paper: the one workload with MissRate_DataHit < MissRate_DataMiss): hit={:.3} miss={:.3}",
        xalan.1.conditional.miss_rate_data_hit(),
        xalan.1.conditional.miss_rate_data_miss()
    );
    if let Some((_, v)) = results.iter().find(|(w, _)| w == "verilator") {
        println!(
            "verilator lifecycle sharing (paper: 73.7% of hitting data lines shared by multiple instructions): {:.1}%",
            v.reuse.map(|x| x.shared_lifecycle_fraction * 100.0).unwrap_or(0.0)
        );
    }
}
