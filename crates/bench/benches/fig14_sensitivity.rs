//! Fig 14 — Garibaldi configuration sensitivity on server mixes
//! (Mockingjay host policy):
//! (a) DL_PA fields per entry k ∈ {0, 1, 2, 4};
//! (b) protection threshold {Mockingjay-only, AllProtect, −16, +0, +16, dynamic};
//! (c) pair-table entries {2⁶, 2¹⁰, 2¹⁴, 2¹⁸};
//! (d) instruction way-partitioning {0..8 ways} vs Garibaldi;
//! plus the protection-only / prefetch-only ablation called out in
//! DESIGN.md §5.
//!
//! `GARIBALDI_MIXES` overrides the mix count (default 8 scaled; paper: 30).

use garibaldi::{GaribaldiConfig, ThresholdMode};
use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::{random_server_mixes, WorkloadMix};

fn garibaldi_with(f: impl FnOnce(&mut GaribaldiConfig)) -> LlcScheme {
    let mut g = GaribaldiConfig::default();
    f(&mut g);
    LlcScheme { policy: PolicyKind::Mockingjay, garibaldi: Some(g) }
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let n_mixes: usize =
        std::env::var("GARIBALDI_MIXES").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let mixes = random_server_mixes(n_mixes, scale.cores, 99);

    // (label, scheme, partition_ways)
    let mut variants: Vec<(String, LlcScheme, usize)> = vec![
        ("lru".into(), LlcScheme::plain(PolicyKind::Lru), 0),
        ("mockingjay".into(), LlcScheme::plain(PolicyKind::Mockingjay), 0),
    ];
    for k in [0u8, 1, 2, 4] {
        variants.push((format!("k={k}"), garibaldi_with(|g| g.k = k), 0));
    }
    variants.push((
        "thr=all-protect".into(),
        garibaldi_with(|g| g.threshold_mode = ThresholdMode::AllProtect),
        0,
    ));
    for delta in [-16i32, 0, 16] {
        variants.push((
            format!("thr={delta:+}"),
            garibaldi_with(|g| g.threshold_mode = ThresholdMode::Fixed(delta)),
            0,
        ));
    }
    variants.push(("thr=dynamic".into(), garibaldi_with(|_| {}), 0));
    for bits in [6u32, 10, 14, 18] {
        variants.push((
            format!("pairs=2^{bits}"),
            garibaldi_with(|g| g.pair_entries_log2 = bits),
            0,
        ));
    }
    for ways in [1usize, 2, 4, 8] {
        variants.push((
            format!("partition={ways}w"),
            LlcScheme::plain(PolicyKind::Mockingjay),
            ways,
        ));
    }
    variants.push(("protect-only".into(), garibaldi_with(|g| g.enable_prefetch = false), 0));
    variants.push(("prefetch-only".into(), garibaldi_with(|g| g.enable_protection = false), 0));

    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for mix in &mixes {
        for (_, scheme, part) in &variants {
            let mix: WorkloadMix = mix.clone();
            let scheme = scheme.clone();
            let part = *part;
            jobs.push(Box::new(move || {
                let mut cfg = SystemConfig::scaled(&scale, scheme);
                cfg.partition_instr_ways = part;
                let runner = SimRunner::new(cfg, mix, 42);
                bench_run(&runner, scale.records_per_core, scale.warmup_per_core).ipc_sum()
            }));
        }
    }
    let flat = parallel_runs(jobs);

    let headers = ["variant", "speedup_over_lru(geomean)"];
    let nv = variants.len();
    let rows: Vec<Vec<String>> = variants
        .iter()
        .enumerate()
        .skip(1)
        .map(|(vi, (label, _, _))| {
            let speedups: Vec<f64> =
                (0..mixes.len()).map(|m| speedup_over(flat[m * nv], flat[m * nv + vi])).collect();
            vec![label.clone(), format!("{:.4}", geomean(&speedups))]
        })
        .collect();
    print_table("Fig 14: Garibaldi sensitivity (Mockingjay host, server mixes)", &headers, &rows);
    write_csv("fig14_sensitivity.csv", &headers, &rows);
    println!(
        "(paper: k: 0→1.089, 1→1.101, 2→1.102, 8→1.092; thr: all→1.052, -16→1.063, +0→1.074, +16→1.071, dyn→1.101;"
    );
    println!(
        " pairs: 2^6→1.049, 2^10→1.062, 2^14→1.101, 2^18→1.111; partition best 2w→1.065 < Garibaldi)"
    );
}
