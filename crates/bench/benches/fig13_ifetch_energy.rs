//! Fig 13 — instruction-fetch stall cycles and energy, normalized to LRU,
//! per server workload under Mockingjay ± Garibaldi (plus DRRIP/Hawkeye
//! variants in the CSV).

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Drrip),
        LlcScheme::with_garibaldi(PolicyKind::Drrip),
        LlcScheme::plain(PolicyKind::Hawkeye),
        LlcScheme::with_garibaldi(PolicyKind::Hawkeye),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> (f64, f64) + Send>> = Vec::new();
    for &w in registry::SERVER_NAMES.iter() {
        for scheme in &schemes {
            let scheme = scheme.clone();
            jobs.push(Box::new(move || {
                let r = run_homogeneous(&scale, scheme, w, 42);
                (r.total_ifetch_stall(), r.energy.total_j())
            }));
        }
    }
    let flat = parallel_runs(jobs);

    let headers = [
        "workload",
        "ifetch_mj",
        "ifetch_mj+G",
        "energy_mj",
        "energy_mj+G",
        "ifetch_hk+G",
        "energy_hk+G",
    ];
    let mut ifetch_mjg = Vec::new();
    let mut energy_mjg = Vec::new();
    let rows: Vec<Vec<String>> = registry::SERVER_NAMES
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let at = |si: usize| flat[wi * schemes.len() + si];
            let (if_lru, en_lru) = at(0);
            let (if_hkg, en_hkg) = at(4);
            let (if_mj, en_mj) = at(5);
            let (if_mjg, en_mjg) = at(6);
            ifetch_mjg.push(if_mjg / if_lru.max(1e-9));
            energy_mjg.push(en_mjg / en_lru.max(1e-9));
            vec![
                w.to_string(),
                format!("{:.3}", if_mj / if_lru.max(1e-9)),
                format!("{:.3}", if_mjg / if_lru.max(1e-9)),
                format!("{:.3}", en_mj / en_lru.max(1e-9)),
                format!("{:.3}", en_mjg / en_lru.max(1e-9)),
                format!("{:.3}", if_hkg / if_lru.max(1e-9)),
                format!("{:.3}", en_hkg / en_lru.max(1e-9)),
            ]
        })
        .collect();
    print_table("Fig 13: ifetch stall cycles & energy (normalized to LRU)", &headers, &rows);
    write_csv("fig13_ifetch_energy.csv", &headers, &rows);
    println!(
        "\ngeomean Mockingjay+G: ifetch {:.3} (paper 0.82), energy {:.3} (paper 0.896)",
        geomean(&ifetch_mjg),
        geomean(&energy_mjg)
    );
}
