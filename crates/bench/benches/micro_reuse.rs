//! Criterion micro-benchmark guarding the reuse profiler's access cost.
//!
//! `profile_reuse = true` runs route every sampled LLC access through the
//! profiler, so its per-access cost directly scales end-to-end wall-clock.
//! The original recency stack paid an O(depth) `Vec::position` scan per
//! access; the epoch-counter + Fenwick structure is O(log w). The deep
//! working-set case is the guard: with ~400 distinct lines per set the old
//! scan averaged hundreds of probes per access.

use criterion::{criterion_group, criterion_main, Criterion};
use garibaldi_sim::ReuseProfiler;
use garibaldi_types::{AccessKind, LineAddr};
use std::hint::black_box;

fn bench_reuse(c: &mut Criterion) {
    // One set so every access is sampled and lands in one tracker.
    c.bench_function("reuse_access_shallow", |b| {
        let mut p = ReuseProfiler::new(1);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            // 16-line working set: constant reuse at small distances.
            p.on_access(LineAddr::new((i % 16) * 8), AccessKind::Data, i % 7);
            black_box(p.data_hist().reuses())
        });
    });
    c.bench_function("reuse_access_deep", |b| {
        let mut p = ReuseProfiler::new(1);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            // ~400 distinct lines: the old stack scanned ~400 entries here.
            p.on_access(LineAddr::new((i % 400) * 8), AccessKind::Data, i % 7);
            black_box(p.data_hist().reuses())
        });
    });
    c.bench_function("reuse_access_mixed_kinds", |b| {
        let mut p = ReuseProfiler::new(1);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            let kind = if i % 3 == 0 { AccessKind::Instr } else { AccessKind::Data };
            p.on_access(LineAddr::new((i % 100) * 8), kind, i % 11);
            if i % 64 == 0 {
                p.on_evict(LineAddr::new((i % 100) * 8), false);
            }
            black_box(p.instr_hist().reuses())
        });
    });
}

criterion_group!(benches, bench_reuse);
criterion_main!(benches);
