//! Criterion micro-benchmarks: cache access/insert throughput per
//! replacement policy (the simulator's hottest path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garibaldi_cache::{AccessCtx, CacheConfig, PolicyKind, SetAssocCache};
use garibaldi_types::LineAddr;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("llc_access_insert");
    group.sample_size(20);
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            let mut cache = SetAssocCache::new(CacheConfig::new("bench", 1024, 12), kind);
            let mut i: u64 = 0;
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9).wrapping_mul(31) % 65_536;
                let ctx = AccessCtx::data(LineAddr::new(i), i >> 3);
                if !cache.access(&ctx, false) {
                    cache.insert(LineAddr::new(i), &ctx, false);
                }
                black_box(cache.stats().accesses())
            });
        });
    }
    group.finish();
}

fn bench_guarded_insert(c: &mut Criterion) {
    c.bench_function("guarded_insert_qbs", |b| {
        let mut cache =
            SetAssocCache::new(CacheConfig::new("bench", 256, 12), PolicyKind::Mockingjay);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(7919);
            let ctx = AccessCtx::instr(LineAddr::new(i % 16_384), i);
            cache.insert_with_guard(LineAddr::new(i % 16_384), &ctx, false, 2, |m| {
                black_box(m.line.get()) % 3 == 0
            })
        });
    });
}

criterion_group!(benches, bench_policies, bench_guarded_insert);
criterion_main!(benches);
