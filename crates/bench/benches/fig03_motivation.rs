//! Fig 3 — the motivation study:
//! (a) average LLC reuse distance, instruction vs data, 1 vs N cores;
//! (b) instruction access ratio in the LLC (SPEC vs server);
//! (c) average access count per cacheline, instruction vs data;
//! (d) speedup of Mockingjay and Mockingjay+I-oracle over LRU.
//!
//! Also prints the §3.1 aggregate miss rates the paper quotes in prose.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::WorkloadMix;

/// A deferred run producing one labeled result row.
type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// One Fig 3(d) row: workload, then LRU / Mockingjay / I-oracle IPC.
type SpeedupRow = (String, f64, f64, f64);

fn profiled(scale: &ExperimentScale, scheme: LlcScheme, w: &str, cores: usize) -> RunResult {
    let mut s = *scale;
    s.cores = cores;
    let mut cfg = SystemConfig::scaled(&s, scheme);
    cfg.profile_reuse = true;
    let runner = SimRunner::new(cfg, WorkloadMix::homogeneous(w, cores), 42);
    bench_run(&runner, s.records_per_core, s.warmup_per_core)
}

fn oracle(scale: &ExperimentScale, w: &str) -> RunResult {
    let mut cfg = SystemConfig::scaled(scale, LlcScheme::plain(PolicyKind::Mockingjay));
    cfg.i_oracle = true;
    let runner = SimRunner::new(cfg, WorkloadMix::homogeneous(w, scale.cores), 42);
    bench_run(&runner, scale.records_per_core, scale.warmup_per_core)
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let spec = ["gcc", "gobmk", "bwaves", "lbm"];
    let server = ["noop", "tpcc", "cassandra", "kafka", "verilator", "xalan", "dotty", "tomcat"];

    // (a)-(c): profiled Mockingjay runs at 1 and N cores.
    let mut jobs: Vec<Job<(String, usize, RunResult)>> = Vec::new();
    for &w in spec.iter().chain(server.iter()) {
        for cores in [1usize, scale.cores] {
            jobs.push(Box::new(move || {
                (
                    w.to_string(),
                    cores,
                    profiled(&scale, LlcScheme::plain(PolicyKind::Mockingjay), w, cores),
                )
            }));
        }
    }
    let profiled_runs = parallel_runs(jobs);

    let headers = [
        "workload",
        "cores",
        "I_dist",
        "D_dist",
        "I_in_assoc",
        "D_in_assoc",
        "I%LLC",
        "acc/I-line",
        "acc/D-line",
    ];
    let rows: Vec<Vec<String>> = profiled_runs
        .iter()
        .map(|(w, cores, r)| {
            let ru = r.reuse.expect("profiling on");
            vec![
                w.clone(),
                cores.to_string(),
                format!("{:.1}", ru.instr_mean_distance),
                format!("{:.1}", ru.data_mean_distance),
                format!("{:.2}", ru.instr_within_assoc),
                format!("{:.2}", ru.data_within_assoc),
                format!("{:.2}%", r.llc.instr_access_ratio() * 100.0),
                format!("{:.2}", ru.accesses_per_instr_line),
                format!("{:.2}", ru.accesses_per_data_line),
            ]
        })
        .collect();
    print_table("Fig 3(a-c): reuse distance / access ratio / per-line counts", &headers, &rows);
    write_csv("fig03_abc.csv", &headers, &rows);

    // §3.1 aggregates.
    let agg = |names: &[&str]| {
        let rs: Vec<&RunResult> = profiled_runs
            .iter()
            .filter(|(w, c, _)| *c == scale.cores && names.contains(&w.as_str()))
            .map(|(_, _, r)| r)
            .collect();
        let n = rs.len() as f64;
        (
            rs.iter().map(|r| r.llc.i_miss_rate()).sum::<f64>() / n,
            rs.iter().map(|r| r.llc.d_miss_rate()).sum::<f64>() / n,
            rs.iter().map(|r| r.llc.instr_access_ratio()).sum::<f64>() / n,
        )
    };
    let (si, sd, sr) = agg(&server);
    let (pi, pd, pr) = agg(&spec);
    println!(
        "\n§3.1 aggregates (paper: server I-miss 95.9%/D-miss 42.1%/I-ratio 13.4%; SPEC 98.9%/67.5%/0.26%)"
    );
    println!(
        "  server measured: I-miss {:.1}%  D-miss {:.1}%  I-ratio {:.2}%",
        si * 100.0,
        sd * 100.0,
        sr * 100.0
    );
    println!(
        "  SPEC   measured: I-miss {:.1}%  D-miss {:.1}%  I-ratio {:.2}%",
        pi * 100.0,
        pd * 100.0,
        pr * 100.0
    );

    // (d): LRU vs Mockingjay vs Mockingjay+I-oracle.
    let mut jobs: Vec<Job<SpeedupRow>> = Vec::new();
    for &w in spec.iter().chain(server.iter()) {
        jobs.push(Box::new(move || {
            let lru = run_homogeneous(&scale, LlcScheme::plain(PolicyKind::Lru), w, 42);
            let mj = run_homogeneous(&scale, LlcScheme::plain(PolicyKind::Mockingjay), w, 42);
            let ora = oracle(&scale, w);
            (
                w.to_string(),
                lru.harmonic_mean_ipc(),
                mj.harmonic_mean_ipc(),
                ora.harmonic_mean_ipc(),
            )
        }));
    }
    let d = parallel_runs(jobs);
    let headers = ["workload", "mj/lru", "mj+Ioracle/lru"];
    let rows: Vec<Vec<String>> = d
        .iter()
        .map(|(w, lru, mj, ora)| {
            vec![
                w.clone(),
                format!("{:.3}", speedup_over(*lru, *mj)),
                format!("{:.3}", speedup_over(*lru, *ora)),
            ]
        })
        .collect();
    print_table("Fig 3(d): Mockingjay vs I-oracle headroom (speedup over LRU)", &headers, &rows);
    write_csv("fig03_d.csv", &headers, &rows);

    let gm = |sel: &dyn Fn(&SpeedupRow) -> f64, names: &[&str]| {
        geomean(
            &d.iter().filter(|(w, ..)| names.contains(&w.as_str())).map(sel).collect::<Vec<_>>(),
        )
    };
    println!(
        "\ngeomean server: mj {:.3}, I-oracle {:.3} (paper: 1.063 vs 1.425) | SPEC: mj {:.3}, I-oracle {:.3} (paper: 1.084 vs 1.092)",
        gm(&|x| speedup_over(x.1, x.2), &server),
        gm(&|x| speedup_over(x.1, x.3), &server),
        gm(&|x| speedup_over(x.1, x.2), &spec),
        gm(&|x| speedup_over(x.1, x.3), &spec),
    );
}
