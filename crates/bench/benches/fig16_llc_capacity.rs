//! Fig 16 — LLC capacity sensitivity: Mockingjay and Mockingjay+Garibaldi
//! at {0.5×, 1×, 1.25×, 1.5×, 2×} the baseline LLC capacity (the paper's
//! 15/30/37.5/45/60 MB points), normalized to LRU at 1×. Associativity
//! fixed at 12 ways.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::WorkloadMix;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let server8 =
        ["noop", "smallbank", "tpcc", "voter", "kafka", "verilator", "finagle-http", "tomcat"];
    let factors = [0.5f64, 1.0, 1.25, 1.5, 2.0];
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for &w in &server8 {
        for &f in &factors {
            for scheme in &schemes {
                let scheme = scheme.clone();
                jobs.push(Box::new(move || {
                    let mut cfg = SystemConfig::scaled(&scale, scheme);
                    cfg.llc_bytes = (cfg.llc_bytes as f64 * f) as u64 / 4096 * 4096;
                    let runner = SimRunner::new(cfg, WorkloadMix::homogeneous(w, scale.cores), 42);
                    bench_run(&runner, scale.records_per_core, scale.warmup_per_core)
                        .harmonic_mean_ipc()
                }));
            }
        }
    }
    let flat = parallel_runs(jobs);

    let headers = ["workload", "llc_x", "lru", "mockingjay", "mockingjay+G"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (wi, w) in server8.iter().enumerate() {
        // Normalize to LRU at 1× (index of factor 1.0 is 1).
        let base = flat[wi * factors.len() * 3 + 3];
        for (fi, f) in factors.iter().enumerate() {
            let at = |si: usize| flat[wi * factors.len() * 3 + fi * 3 + si];
            rows.push(vec![
                w.to_string(),
                format!("{f:.2}"),
                format!("{:.4}", speedup_over(base, at(0))),
                format!("{:.4}", speedup_over(base, at(1))),
                format!("{:.4}", speedup_over(base, at(2))),
            ]);
        }
    }
    print_table("Fig 16: LLC capacity sensitivity (normalized to LRU at 1x)", &headers, &rows);
    write_csv("fig16_llc_capacity.csv", &headers, &rows);
    println!("(paper shape: Mockingjay's edge shrinks with capacity; Garibaldi keeps a margin even at 2x)");
}
