//! Epoch-engine fidelity sweep — the study behind the default
//! `EngineConfig::epoch_cycles`, the benches' parallel-engine flip, and
//! the ewma estimator default.
//!
//! Runs matched (mix, scale, scheme) points through the serial min-clock
//! engine and the epoch-sharded engine across an `epoch_cycles` ×
//! issue-latency-estimator grid ({optimistic, ewma} — see
//! `sim::engine::estimate`), prints the per-(epoch, estimator) error
//! table, and writes the machine-readable report to
//! `target/garibaldi-results/fidelity_report.jsonl` (the committed copy
//! lives in `docs/fidelity/`). Individual runs checkpoint through
//! `fidelity_sweep.jsonl`, so an interrupted sweep resumes (estimator
//! tags keep rows from different profiles apart).
//!
//! Knobs:
//! - `GARIBALDI_FID_GRID` — comma-separated `epoch_cycles` values
//!   (default `5000,20000,50000,100000,250000`);
//! - `GARIBALDI_FID_MIXES` — mini-Fig 11 mix count (default 3);
//! - `GARIBALDI_FID_WORKLOADS` — mini-Fig 12 workload count (default 4);
//! - `GARIBALDI_SYNC_EVERY` / `GARIBALDI_TRAIN_MODE` — sweep an
//!   off-default learned-sync cadence / the async training mode
//!   (`docs/fidelity/` commits one report per studied value);
//! - `GARIBALDI_FULL=1` — sweep at the default figure scale instead of
//!   the shortened fidelity scale (slow).

use garibaldi_bench::*;
use garibaldi_sim::experiment::run_mix_on;
use garibaldi_sim::fidelity::FidelitySuite;
use garibaldi_trace::registry;

fn main() {
    let scale = match std::env::var("GARIBALDI_FULL").as_deref() {
        Ok("1") | Ok("true") => ExperimentScale::default_scaled(),
        _ => ExperimentScale::fidelity_small(),
    };
    let grid: Vec<u64> = std::env::var("GARIBALDI_FID_GRID")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("GARIBALDI_FID_GRID: comma-separated integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![5_000, 20_000, 50_000, 100_000, 250_000]);
    let n_mixes: usize =
        std::env::var("GARIBALDI_FID_MIXES").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let n_workloads: usize =
        std::env::var("GARIBALDI_FID_WORKLOADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let workloads: Vec<&str> =
        ["tpcc", "twitter", "kafka", "verilator", "tomcat", "cassandra", "voter", "dotty"]
            .into_iter()
            .take(n_workloads.min(registry::SERVER_NAMES.len()))
            .collect();

    let mut suite = FidelitySuite::paper_figures(scale, n_mixes, &workloads, grid);
    // Learned-sync cadence axis: GARIBALDI_SYNC_EVERY measures one
    // off-default cadence per invocation (ewma engine tags embed it, so
    // checkpoint rows from different cadences never mix; serial and
    // optimistic rows are cadence-independent and stay shared).
    if let Some(k) = garibaldi_sim::config::env_positive("GARIBALDI_SYNC_EVERY") {
        suite.sync_every = k;
    }
    // Training-mode axis: GARIBALDI_TRAIN_MODE=async sweeps the whole
    // parallel grid under asynchronous training (every engine tag grows
    // an `-async` suffix, so async rows never collide with sync rows in
    // the checkpoint or the report).
    if let Some(m) = garibaldi_sim::TrainMode::parse(
        "GARIBALDI_TRAIN_MODE",
        std::env::var("GARIBALDI_TRAIN_MODE").ok().as_deref(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
    {
        suite.train_mode = m;
    }
    let jobs = suite.jobs();
    println!(
        "fidelity sweep: {} points × (serial + {} epoch values) = {} runs \
         (c{} r{} f{})",
        suite.points.len(),
        suite.epoch_grid.len(),
        jobs.len(),
        scale.cores,
        scale.records_per_core,
        scale.factor
    );

    let keyed: Vec<(String, Box<dyn FnOnce() -> RunResult + Send>)> = jobs
        .iter()
        .map(|j| {
            let p = &suite.points[j.point];
            let (mix, scheme, seed, engine) = (p.mix.clone(), p.scheme.clone(), p.seed, j.engine);
            let job: Box<dyn FnOnce() -> RunResult + Send> =
                Box::new(move || run_mix_on(&scale, scheme, &mix, seed, engine));
            (j.key.clone(), job)
        })
        .collect();
    let results = parallel_runs_checkpointed("fidelity_sweep.jsonl", keyed);

    let report = suite.assemble(&results);
    println!("\n== Epoch-engine fidelity vs the serial reference ==");
    print!("{}", report.human_table());

    let path = out_dir().join("fidelity_report.jsonl");
    std::fs::write(&path, report.to_json_lines()).expect("write fidelity report");
    println!("[report] {}", path.display());

    let target_tol = 0.01;
    let hard_tol = 0.02;
    if let Some((e, est)) = report.recommend(target_tol) {
        let err = report.max_figure_err_for(e, est);
        if err <= target_tol {
            println!(
                "recommended default: epoch_cycles = {e} with the {est} estimator — largest grid \
                 point with figure-geomean error ≤ {:.1}% ({:.4}%; hard gate {:.1}%)",
                target_tol * 100.0,
                err * 100.0,
                hard_tol * 100.0
            );
        } else {
            println!(
                "no (epoch, estimator) cell meets the {:.1}% target; least-error cell is \
                 ({e}, {est}) at {:.4}% (hard gate {:.1}%)",
                target_tol * 100.0,
                err * 100.0,
                hard_tol * 100.0
            );
        }
    }
    let current = EngineConfig::default().epoch_cycles;
    if report.epoch_grid.contains(&current) {
        for est in &report.estimators {
            let (f, c) =
                (report.max_figure_err_for(current, est), report.max_cell_err_for(current, est));
            let verdict = if f <= hard_tol { "within the hard gate" } else { "OVER the hard gate" };
            println!(
                "default epoch_cycles = {current}, {est}: figure err {:.4}%, cell err {:.4}% — \
                 {verdict}",
                f * 100.0,
                c * 100.0
            );
        }
    } else {
        println!(
            "current EngineConfig::default().epoch_cycles = {current} is not in the sweep grid; \
             add it via GARIBALDI_FID_GRID to validate it"
        );
    }
}
