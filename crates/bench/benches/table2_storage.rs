//! Table 2 — Garibaldi storage overheads, computed from the configuration
//! (exact bit accounting; the paper's table rounds to power-of-two arrays).

use garibaldi::{GaribaldiConfig, StorageReport};
use garibaldi_bench::*;

fn main() {
    let cfg = GaribaldiConfig::default();
    let cores = 40;
    let r = StorageReport::compute(&cfg, cores);

    let kb = |b: u64| format!("{:.1} KB", b as f64 / 1024.0);
    let headers = ["structure", "entries", "entry_bits", "size"];
    let rows = vec![
        vec![
            "main pair table".to_string(),
            cfg.pair_entries().to_string(),
            r.pair_entry_bits.to_string(),
            kb(r.pair_table_bytes),
        ],
        vec![
            "D_PPN table".to_string(),
            cfg.dppn_entries().to_string(),
            "23".to_string(),
            kb(r.dppn_table_bytes),
        ],
        vec![
            "helper table (per core)".to_string(),
            cfg.helper_entries.to_string(),
            "64".to_string(),
            kb(r.helper_table_bytes_per_core),
        ],
        vec![format!("total ({cores} cores)"), String::new(), String::new(), kb(r.total_bytes())],
    ];
    print_table("Table 2: Garibaldi storage overheads", &headers, &rows);
    write_csv("table2_storage.csv", &headers, &rows);

    let llc = 30u64 * 1024 * 1024;
    println!(
        "\noverhead vs 30 MB LLC: {:.2}% (paper: 193.9 KB total, 0.6%; +1 instr bit/line -> 0.8%)",
        r.overhead_vs_llc(llc) * 100.0
    );
    println!(
        "DL_PA field: {} bits (paper: 23); pair entry: {} bits (paper: 34 + k*23 = 57 at k=1)",
        r.dl_field_bits, r.pair_entry_bits
    );
}
