//! Fig 11 — end-to-end weighted-speedup distribution over random
//! multiprogrammed server mixes: Hawkeye, Hawkeye+Garibaldi, Mockingjay,
//! Mockingjay+Garibaldi, each normalized to LRU and sorted by
//! Mockingjay+Garibaldi's speedup (the paper's S-curve).
//!
//! `GARIBALDI_MIXES` overrides the mix count (default 20 scaled; paper: 60).
//!
//! Runs checkpoint through `fig11_end_to_end.jsonl` in the results dir:
//! an interrupted sweep resumes with only the missing (mix, scheme) cells.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::random_server_mixes;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let n_mixes: usize =
        std::env::var("GARIBALDI_MIXES").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    let mixes = random_server_mixes(n_mixes, scale.cores, 77);

    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Hawkeye),
        LlcScheme::with_garibaldi(PolicyKind::Hawkeye),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    let engine = engine_tag();
    let mut jobs: Vec<(String, Box<dyn FnOnce() -> RunResult + Send>)> = Vec::new();
    for (m, mix) in mixes.iter().enumerate() {
        for scheme in &schemes {
            let mix = mix.clone();
            let scheme = scheme.clone();
            let key = format!(
                "fig11/{engine}/c{}r{}f{}/mix{m}/{}",
                scale.cores,
                scale.records_per_core,
                scale.factor,
                scheme.label()
            );
            jobs.push((
                key,
                Box::new(move || {
                    // IPC throughput normalization happens against the LRU
                    // run of the same mix, so per-workload single-core IPCs
                    // cancel.
                    run_mix(&scale, scheme, &mix, 42)
                }),
            ));
        }
    }
    let flat: Vec<f64> = parallel_runs_checkpointed("fig11_end_to_end.jsonl", jobs)
        .iter()
        .map(|r| r.ipc_sum())
        .collect();

    // Rows: one per mix, normalized to its LRU run.
    let mut rows_raw: Vec<[f64; 4]> = Vec::new();
    for m in 0..mixes.len() {
        let base = flat[m * schemes.len()];
        rows_raw.push([
            speedup_over(base, flat[m * schemes.len() + 1]),
            speedup_over(base, flat[m * schemes.len() + 2]),
            speedup_over(base, flat[m * schemes.len() + 3]),
            speedup_over(base, flat[m * schemes.len() + 4]),
        ]);
    }
    rows_raw.sort_by(|a, b| a[3].partial_cmp(&b[3]).expect("finite"));

    let headers = ["mix#", "Hawkeye", "Hawkeye+G", "Mockingjay", "Mockingjay+G"];
    let rows: Vec<Vec<String>> = rows_raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                i.to_string(),
                format!("{:.4}", r[0]),
                format!("{:.4}", r[1]),
                format!("{:.4}", r[2]),
                format!("{:.4}", r[3]),
            ]
        })
        .collect();
    print_table("Fig 11: speedup over LRU across server mixes (sorted)", &headers, &rows);
    write_csv("fig11_end_to_end.csv", &headers, &rows);

    for (i, name) in ["Hawkeye", "Hawkeye+G", "Mockingjay", "Mockingjay+G"].iter().enumerate() {
        let gm = geomean(&rows_raw.iter().map(|r| r[i]).collect::<Vec<_>>());
        println!("geomean {name}: {gm:.4}");
    }
    println!(
        "(paper geomeans: Hawkeye 1.013, Hawkeye+G 1.056, Mockingjay 1.040, Mockingjay+G 1.093)"
    );
}
