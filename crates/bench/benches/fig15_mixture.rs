//! Fig 15 — (a) Garibaldi's benefit versus the fraction of server
//! workloads in the mix (0..100 %); (b) comparison against simply adding
//! the pair table's storage budget to the LLC or to the L1I.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::server_spec_mix;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());

    // (a) server percentage sweep.
    let pcts = [0u32, 25, 50, 75, 100];
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for &pct in &pcts {
        let mix = server_spec_mix(pct, scale.cores, 5);
        for scheme in &schemes {
            let scheme = scheme.clone();
            let mix = mix.clone();
            jobs.push(Box::new(move || run_mix(&scale, scheme, &mix, 42).ipc_sum()));
        }
    }
    let flat = parallel_runs(jobs);
    let headers = ["server%", "mockingjay/lru", "mockingjay+G/lru"];
    let rows: Vec<Vec<String>> = pcts
        .iter()
        .enumerate()
        .map(|(i, pct)| {
            let base = flat[i * 3];
            vec![
                pct.to_string(),
                format!("{:.4}", speedup_over(base, flat[i * 3 + 1])),
                format!("{:.4}", speedup_over(base, flat[i * 3 + 2])),
            ]
        })
        .collect();
    print_table("Fig 15(a): benefit vs server fraction of the mix", &headers, &rows);
    write_csv("fig15_a.csv", &headers, &rows);
    println!(
        "(paper: Garibaldi's edge over Mockingjay grows from +0.1% at 0% server to +5.3% at 75%+)"
    );

    // (b) same storage budget spent elsewhere: +200KB LLC / +5KB L1I.
    // Storage figures follow Table 2 at full scale and scale with the run.
    let extra_llc = (200.0 * 1024.0 * scale.factor) as u64;
    let extra_l1i = (5.0 * 1024.0 * scale.factor) as u64;
    let server8 = ["noop", "tpcc", "cassandra", "verilator", "tomcat", "dotty", "xalan", "twitter"];
    let variants: Vec<(&str, LlcScheme, u64, u64)> = vec![
        ("mockingjay", LlcScheme::plain(PolicyKind::Mockingjay), 0, 0),
        ("+200KB LLC", LlcScheme::plain(PolicyKind::Mockingjay), extra_llc, 0),
        ("+5KB L1I", LlcScheme::plain(PolicyKind::Mockingjay), 0, extra_l1i),
        ("garibaldi", LlcScheme::mockingjay_garibaldi(), 0, 0),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for &w in &server8 {
        // LRU baseline.
        jobs.push(Box::new(move || {
            run_homogeneous(&scale, LlcScheme::plain(PolicyKind::Lru), w, 42).harmonic_mean_ipc()
        }));
        for (_, scheme, dllc, dl1i) in &variants {
            let scheme = scheme.clone();
            let (dllc, dl1i) = (*dllc, *dl1i);
            jobs.push(Box::new(move || {
                let mut cfg = SystemConfig::scaled(&scale, scheme);
                cfg.llc_bytes += dllc;
                cfg.l1i_bytes += dl1i;
                let runner = SimRunner::new(
                    cfg,
                    garibaldi_trace::WorkloadMix::homogeneous(w, scale.cores),
                    42,
                );
                bench_run(&runner, scale.records_per_core, scale.warmup_per_core)
                    .harmonic_mean_ipc()
            }));
        }
    }
    let flat = parallel_runs(jobs);
    let stride = variants.len() + 1;
    let headers = ["variant", "speedup_over_lru(geomean)"];
    let rows: Vec<Vec<String>> = variants
        .iter()
        .enumerate()
        .map(|(vi, (label, ..))| {
            let sp: Vec<f64> = (0..server8.len())
                .map(|w| speedup_over(flat[w * stride], flat[w * stride + 1 + vi]))
                .collect();
            vec![label.to_string(), format!("{:.4}", geomean(&sp))]
        })
        .collect();
    print_table("Fig 15(b): same storage budget, different placements", &headers, &rows);
    write_csv("fig15_b.csv", &headers, &rows);
    println!("(paper: +200KB LLC +0.21%, +5KB L1I +0.48%, Garibaldi +5.25% over Mockingjay)");
}
