//! Criterion micro-benchmark: trace-generation throughput (records/s) for
//! a server and a SPEC profile — generation must stay far cheaper than the
//! cache simulation consuming it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garibaldi_trace::{registry, SyntheticProgram, TraceGenerator};
use std::hint::black_box;

fn bench_tracegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracegen");
    group.throughput(Throughput::Elements(1));
    for name in ["tpcc", "verilator", "lbm"] {
        let program = SyntheticProgram::build(registry::by_name(name).unwrap(), 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            let mut gen = TraceGenerator::new(p, 7);
            b.iter(|| black_box(gen.next_record()));
        });
    }
    group.finish();
}

fn bench_program_build(c: &mut Criterion) {
    c.bench_function("program_build_tpcc", |b| {
        let profile = registry::by_name("tpcc").unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(SyntheticProgram::build(profile, seed).text_lines())
        });
    });
}

criterion_group!(benches, bench_tracegen, bench_program_build);
criterion_main!(benches);
