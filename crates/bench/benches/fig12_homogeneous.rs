//! Fig 12 — per-workload speedup over LRU under homogeneous server
//! workloads: DRRIP, Hawkeye, Mockingjay, each with and without Garibaldi.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;
use garibaldi_trace::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let schemes = [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Drrip),
        LlcScheme::with_garibaldi(PolicyKind::Drrip),
        LlcScheme::plain(PolicyKind::Hawkeye),
        LlcScheme::with_garibaldi(PolicyKind::Hawkeye),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for &w in registry::SERVER_NAMES.iter() {
        for scheme in &schemes {
            let scheme = scheme.clone();
            jobs.push(Box::new(move || run_homogeneous(&scale, scheme, w, 42).harmonic_mean_ipc()));
        }
    }
    let flat = parallel_runs(jobs);

    let labels: Vec<String> = schemes.iter().skip(1).map(|s| s.label()).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(labels.iter().map(|s| s.as_str()));

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    let rows: Vec<Vec<String>> = registry::SERVER_NAMES
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let base = flat[wi * schemes.len()];
            let mut row = vec![w.to_string()];
            for si in 1..schemes.len() {
                let sp = speedup_over(base, flat[wi * schemes.len() + si]);
                per_scheme[si - 1].push(sp);
                row.push(format!("{:.4}", sp));
            }
            row
        })
        .collect();

    let mut rows = rows;
    let mut gm_row = vec!["geomean".to_string()];
    for v in &per_scheme {
        gm_row.push(format!("{:.4}", geomean(v)));
    }
    rows.push(gm_row);

    print_table("Fig 12: speedup over LRU, homogeneous server workloads", &headers, &rows);
    write_csv("fig12_homogeneous.csv", &headers, &rows);
    println!(
        "(paper geomeans: DRRIP 1.015, DRRIP+G 1.071, Hawkeye 1.019, Hawkeye+G 1.128, Mockingjay 1.061, Mockingjay+G 1.132)"
    );
}
