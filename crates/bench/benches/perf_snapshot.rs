//! Machine-readable performance snapshot: the PR 2 40-core reference
//! point's engine phase breakdown plus the hot-structure micro-bench
//! ns/iter numbers, as one JSON document.
//!
//! This is the perf trajectory's unit of record: each optimization PR
//! regenerates it and commits the result as `BENCH_<n>.json` at the repo
//! root, so regressions show up as reviewable diffs instead of buried
//! bench logs. The CI perf-smoke leg runs this target and prints the same
//! breakdown into the job log.
//!
//! ```console
//! $ cargo bench -p garibaldi-bench --bench perf_snapshot
//! $ cp target/garibaldi-results/perf_snapshot.json BENCH_<n>.json
//! ```
//!
//! Knobs: `GARIBALDI_PERF_RECORDS` / `GARIBALDI_PERF_WARMUP` shrink the
//! reference point (CI smoke); the committed snapshot uses the defaults
//! (30 k + 7.5 k records/core × 40 cores = 1.5 M records, the PR 2
//! reference). Wall-clock numbers are machine-dependent — compare
//! snapshots from the same host class only.

use garibaldi_bench::*;
use garibaldi_sim::{EngineStats, EstimatorKind, TrainMode};
use garibaldi_trace::{random_shared_mixes, WorkloadMix};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One engine leg of the snapshot.
struct EngineLeg {
    estimator: EstimatorKind,
    sync_every: usize,
    train_mode: TrainMode,
    stats: EngineStats,
    harmonic_mean_ipc: f64,
}

fn reference_runner(records: u64, warmup: u64) -> (SimRunner, u64, u64) {
    let scale = ExperimentScale {
        factor: 1.0,
        cores: 40,
        records_per_core: records,
        warmup_per_core: warmup,
        color_period: (records / 8).max(1_000),
    };
    let cfg = SystemConfig::scaled(&scale, LlcScheme::mockingjay_garibaldi());
    let workloads = ["tpcc", "twitter", "kafka", "verilator"];
    let slots: Vec<String> = (0..40).map(|i| workloads[i % 4].to_string()).collect();
    (SimRunner::new(cfg, WorkloadMix { slots }, 42), records, warmup)
}

fn run_leg(
    runner: &SimRunner,
    records: u64,
    warmup: u64,
    estimator: EstimatorKind,
    train_mode: TrainMode,
) -> EngineLeg {
    let eng = EngineConfig { estimator, train_mode, ..EngineConfig::default() };
    let (result, stats) = runner.run_parallel_stats(records, warmup, &eng);
    println!(
        "[perf] {}{}{} wall={:.3}s step={:.3}s drain={:.3}s merge={:.3}s apply={:.3}s \
         serial={:.3}s epochs={} syncs={} merge-bg={:.3}s lag={} hmean-ipc={:.4}",
        estimator.label(),
        if estimator == EstimatorKind::Ewma {
            format!(" k={}", eng.sync_every)
        } else {
            String::new()
        },
        if train_mode == TrainMode::Async { " async" } else { "" },
        stats.wall_s,
        stats.step_s,
        stats.drain_s,
        stats.merge_s,
        stats.apply_s,
        stats.serial_s,
        stats.epochs,
        stats.learned_syncs,
        stats.merge_bg_s,
        stats.publish_lag,
        result.harmonic_mean_ipc(),
    );
    EngineLeg {
        estimator,
        sync_every: eng.sync_every,
        train_mode,
        stats,
        harmonic_mean_ipc: result.harmonic_mean_ipc(),
    }
}

/// The shared-data coherence reference point (PR 8): an 8-core random
/// shared mix (two L2 clusters, so the LLC directory actually carries
/// cross-cluster invalidations) under the reference scheme on the parallel
/// engine. Tracks the MESI path's cost and activity: `invalidations` is the
/// serial-comparable drop count from the run result, `inval_cmds` the
/// popcount-weighted invalidation commands the shards issued. Both must stay
/// > 0 — a zero here means the directory path went dormant.
struct SharedLeg {
    mix: String,
    stats: EngineStats,
    harmonic_mean_ipc: f64,
    invalidations: u64,
}

fn shared_reference(records: u64, warmup: u64) -> SharedLeg {
    let scale = ExperimentScale {
        factor: 1.0,
        cores: 8,
        records_per_core: records,
        warmup_per_core: warmup,
        color_period: (records / 8).max(1_000),
    };
    let cfg = SystemConfig::scaled(&scale, LlcScheme::mockingjay_garibaldi());
    let mix = random_shared_mixes(1, scale.cores, 42).remove(0);
    let mix_label = mix.slots.join(",");
    let runner = SimRunner::new(cfg, mix, 42);
    let eng = EngineConfig { estimator: EstimatorKind::Ewma, ..EngineConfig::default() };
    let (result, stats) = runner.run_parallel_stats(records, warmup, &eng);
    println!(
        "[perf] shared-ref ({mix_label}) wall={:.3}s invals={} inval-cmds={} hmean-ipc={:.4}",
        stats.wall_s,
        result.invalidations,
        stats.inval_cmds,
        result.harmonic_mean_ipc(),
    );
    SharedLeg {
        mix: mix_label,
        stats,
        harmonic_mean_ipc: result.harmonic_mean_ipc(),
        invalidations: result.invalidations,
    }
}

/// Times `f` (ns/iter): short warmup, then a fixed-iteration measured loop
/// sized from the warmup estimate. Coarse by design — the snapshot tracks
/// order-of-magnitude regressions, not single-digit percents.
fn ns_per_iter<R>(mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    let mut warm = 0u64;
    while t0.elapsed().as_millis() < 30 {
        black_box(f());
        warm += 1;
    }
    let per = (t0.elapsed().as_nanos() as f64 / warm as f64).max(0.5);
    let iters = ((150e6 / per) as u64).clamp(1_000, 50_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t1.elapsed().as_nanos() as f64 / iters as f64
}

fn micro_benches() -> Vec<(&'static str, f64)> {
    use garibaldi::{DppnTable, GaribaldiConfig, PairTable};
    use garibaldi_sim::ReuseProfiler;
    use garibaldi_types::{AccessKind, LineAddr, U64Table};

    let mut out = Vec::new();

    // Pair table: allocate/update and protection queries (the shared
    // fast-hash index mixer's consumers).
    let cfg = GaribaldiConfig::default();
    let mut t = PairTable::new(&cfg);
    let mut i = 0u64;
    out.push((
        "pair_table_update",
        ns_per_iter(|| {
            i = i.wrapping_add(1);
            t.update_on_data(
                LineAddr::new(i % 100_000),
                i % 3 == 0,
                (i % 8_192) as u16,
                (i % 64) as u8,
                (i % 8) as u8,
                32,
            );
        }),
    ));
    let mut q = 0u64;
    out.push((
        "pair_table_query",
        ns_per_iter(|| {
            q = q.wrapping_add(17);
            t.query_protect(LineAddr::new(q % 100_000), 0, 32)
        }),
    ));
    let dppn = DppnTable::new(64);
    let mut pf_buf = Vec::new();
    let mut p = 0u64;
    out.push((
        "pair_table_prefetch_candidates_into",
        ns_per_iter(|| {
            p = p.wrapping_add(31);
            t.prefetch_candidates_into(LineAddr::new(p % 100_000), &dppn, &mut pf_buf);
        }),
    ));

    // Reuse profiler (the micro_reuse guard, snapshot form).
    let mut prof = ReuseProfiler::new(1);
    let mut r = 0u64;
    out.push((
        "reuse_access_shallow",
        ns_per_iter(|| {
            r = r.wrapping_add(1);
            prof.on_access(LineAddr::new((r % 16) * 8), AccessKind::Data, r % 7);
        }),
    ));
    let mut prof_deep = ReuseProfiler::new(1);
    let mut d = 0u64;
    out.push((
        "reuse_access_deep",
        ns_per_iter(|| {
            d = d.wrapping_add(1);
            prof_deep.on_access(LineAddr::new((d % 400) * 8), AccessKind::Data, d % 7);
        }),
    ));

    // The open-addressed table against std's SipHash HashMap on the same
    // churn pattern (the tentpole's constant factor, isolated).
    let mut fast: U64Table<u64> = U64Table::new();
    let mut k = 0u64;
    out.push((
        "u64table_insert_get_remove",
        ns_per_iter(|| {
            k = k.wrapping_add(1);
            fast.insert(k % 4096, k);
            black_box(fast.get((k * 7) % 4096));
            fast.remove((k * 13) % 4096);
        }),
    ));
    let mut slow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut k2 = 0u64;
    out.push((
        "std_hashmap_insert_get_remove",
        ns_per_iter(|| {
            k2 = k2.wrapping_add(1);
            slow.insert(k2 % 4096, k2);
            black_box(slow.get(&((k2 * 7) % 4096)));
            slow.remove(&((k2 * 13) % 4096));
        }),
    ));

    // SoA tag-array hot paths: single-pass way scan on hit and miss, and
    // the full evict+fill pipeline (scan → victim → evict → fill) under
    // LRU on an LLC-like non-pow2 geometry (modulo set indexing, the
    // worst case for the index arithmetic).
    use garibaldi_cache::{AccessCtx, CacheConfig, PolicyKind, SetAssocCache};
    let mk_llc = || SetAssocCache::new(CacheConfig::new("bench-llc", 1_920, 12), PolicyKind::Lru);
    let resident = 1_920u64 * 12;

    let mut hit_c = mk_llc();
    for l in 0..resident {
        hit_c.insert(LineAddr::new(l), &AccessCtx::data(LineAddr::new(l), l), false);
    }
    let mut h = 0u64;
    out.push((
        "setassoc_access_hit",
        ns_per_iter(|| {
            h = h.wrapping_add(7);
            let la = LineAddr::new(h % resident);
            hit_c.access(&AccessCtx::data(la, h), false)
        }),
    ));

    let mut miss_c = mk_llc();
    for l in 0..resident {
        miss_c.insert(LineAddr::new(l), &AccessCtx::data(LineAddr::new(l), l), false);
    }
    let mut ms = 0u64;
    out.push((
        "setassoc_access_miss",
        ns_per_iter(|| {
            ms = ms.wrapping_add(7);
            // Lines beyond the resident range: same sets, no tag match.
            let la = LineAddr::new(resident + ms % resident);
            miss_c.access(&AccessCtx::data(la, ms), false)
        }),
    ));

    let mut ev_c = mk_llc();
    for l in 0..resident {
        ev_c.insert(LineAddr::new(l), &AccessCtx::data(LineAddr::new(l), l), false);
    }
    let mut e = 0u64;
    out.push((
        "setassoc_insert_evict",
        ns_per_iter(|| {
            e = e.wrapping_add(1);
            // Strictly increasing lines: every insert misses a full set and
            // evicts (13 distinct lines rotate per set under 12 ways).
            ev_c.insert(LineAddr::new(resident + e), &AccessCtx::data(LineAddr::new(e), e), false)
        }),
    ));

    // Temporal prefetcher miss path (U64Table-backed successor table).
    let mut tp = garibaldi_cache::TemporalPrefetcher::new();
    let mut cand = Vec::new();
    let mut m = 0u64;
    out.push((
        "temporal_prefetcher_miss",
        ns_per_iter(|| {
            use garibaldi_cache::Prefetcher;
            m = m.wrapping_add(1);
            cand.clear();
            tp.on_access(LineAddr::new(m % 10_000), 0, false, &mut cand);
        }),
    ));

    // Batched shard drain (phase A) and command application (phase B′):
    // one whole-LLC shard under the reference scheme resolving a
    // pre-sorted 512-request run / 512-command soup per iteration — the
    // two loops the software-pipelined lookahead window targets.
    {
        use garibaldi_sim::engine::request::{LlcRequest, ReqKey, ReqKind, ShardCmd};
        use garibaldi_sim::engine::shard::{DrainOut, LlcShard, ThresholdSnapshot};
        use garibaldi_types::VirtAddr;

        let scale = ExperimentScale {
            factor: 1.0,
            cores: 40,
            records_per_core: 30_000,
            warmup_per_core: 7_500,
            color_period: 3_750,
        };
        let cfg = SystemConfig::scaled(&scale, LlcScheme::mockingjay_garibaldi());
        let llc_sets = CacheConfig::from_capacity("llc", cfg.llc_bytes, cfg.llc_ways).sets;
        let mut shard = LlcShard::new(&cfg, 0, 1, llc_sets);
        let snap = ThresholdSnapshot { color: 0, threshold: 4 };

        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };

        const RUN: u32 = 512;
        let mut reqs = Vec::with_capacity(RUN as usize);
        let mut now = 0u64;
        for s in 0..RUN {
            let a = step();
            now += 1 + a % 3;
            let kind = match a % 8 {
                0..=2 => ReqKind::Instr { demand: a % 16 < 12 },
                3..=5 => ReqKind::Data {
                    is_write: a % 5 == 0,
                    il_hint: (a % 3 == 0).then(|| LineAddr::new((a >> 8) % (1 << 20))),
                    ifetch_seq: None,
                },
                6 => ReqKind::Writeback { is_instr: a % 2 == 0 },
                _ => ReqKind::PfProbe,
            };
            reqs.push(LlcRequest {
                key: ReqKey { now, core: (a % 40) as u16, seq: s },
                line: LineAddr::new(a % (1 << 20)),
                pc: VirtAddr::new((a & 0xffff_fff0) << 2),
                sig: a >> 17,
                cluster: (a % 10) as u16,
                kind,
            });
        }
        let mut drain_out = DrainOut::default();
        out.push((
            "shard_drain_run",
            ns_per_iter(|| {
                shard.drain(&reqs, snap, &mut drain_out);
                drain_out.outcomes.len()
            }),
        ));

        let mut cmds = Vec::with_capacity(RUN as usize);
        let mut cnow = 0u64;
        for s in 0..RUN {
            let a = step();
            cnow += 1 + a % 3;
            let key = ReqKey { now: cnow, core: (a % 40) as u16, seq: s };
            let cmd = if a % 3 == 0 {
                ShardCmd::PairwisePrefetch {
                    dl: LineAddr::new(a % (1 << 20)),
                    sig: a >> 13,
                    now: cnow,
                }
            } else {
                ShardCmd::PairUpdate {
                    il: LineAddr::new((a >> 7) % (1 << 20)),
                    data_hit: a % 2 == 0,
                    dl: LineAddr::new((a >> 11) % (1 << 20)),
                }
            };
            cmds.push((key, cmd));
        }
        out.push(("apply_cmds_run", ns_per_iter(|| shard.apply_cmds(&cmds, snap))));
    }

    // Learned-state merge (the unit of work the async training mode lifts
    // off the barrier critical path): pool eight divergently trained
    // Mockingjay predictors' privatized exports into one consensus. One
    // iteration ≈ one sync's merge under the 8-shard default geometry.
    {
        let n_shards = 8usize;
        let peers: Vec<SetAssocCache> = (0..n_shards as u64)
            .map(|i| {
                let mut c =
                    SetAssocCache::new(CacheConfig::new("merge", 64, 8), PolicyKind::Mockingjay);
                let mut state = 0x9e37_79b9u64.wrapping_mul(i + 1) | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..4_000 {
                    let la = LineAddr::new(next() % 2_048);
                    let ctx = AccessCtx::data(la, 0x40_0000 + (next() % 256) * 4);
                    if !c.access(&ctx, false) {
                        c.insert(la, &ctx, false);
                    }
                }
                c
            })
            .collect();
        let exports: Vec<Vec<u32>> = peers.iter().map(|c| c.export_policy_learned()).collect();
        let mut merged = Vec::new();
        out.push((
            "learned_merge_run",
            ns_per_iter(|| {
                peers[0].merge_policy_learned(&exports, &mut merged);
                merged.len()
            }),
        ));
    }

    for (name, ns) in &out {
        println!("[perf] {name:<36} {ns:>10.1} ns/iter");
    }
    out
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let records: u64 =
        std::env::var("GARIBALDI_PERF_RECORDS").ok().and_then(|v| v.parse().ok()).unwrap_or(30_000);
    let warmup: u64 =
        std::env::var("GARIBALDI_PERF_WARMUP").ok().and_then(|v| v.parse().ok()).unwrap_or(7_500);
    println!(
        "perf snapshot: 40-core reference point (tpcc/twitter/kafka/verilator, factor 1.0, \
         {records}+{warmup} records/core), workers=1"
    );

    let (runner, records, warmup) = reference_runner(records, warmup);
    // Three reference rows: the Optimistic floor, the ewma profile under
    // synchronous training (the PR 8 number), and the same profile with
    // asynchronous training — the row the learned-merge overlap moves.
    let legs: Vec<EngineLeg> = [
        (EstimatorKind::Optimistic, TrainMode::Sync),
        (EstimatorKind::Ewma, TrainMode::Sync),
        (EstimatorKind::Ewma, TrainMode::Async),
    ]
    .into_iter()
    .map(|(e, m)| run_leg(&runner, records, warmup, e, m))
    .collect();
    let shared = shared_reference(records, warmup);
    let micro = micro_benches();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"garibaldi-perf-snapshot-v1\",");
    let _ = writeln!(
        json,
        "  \"reference_point\": {{\"cores\": 40, \"factor\": 1.0, \
         \"workloads\": \"tpcc,twitter,kafka,verilator\", \"scheme\": \"Mockingjay+Garibaldi\", \
         \"records_per_core\": {records}, \"warmup_per_core\": {warmup}, \"workers\": 1, \
         \"seed\": 42}},"
    );
    let _ = writeln!(json, "  \"engine\": [");
    for (i, leg) in legs.iter().enumerate() {
        let s = &leg.stats;
        let _ = writeln!(
            json,
            "    {{\"estimator\": \"{}\", \"sync_every\": {}, \"train_mode\": \"{}\", \
             \"wall_s\": {}, \"step_s\": {}, \"drain_s\": {}, \"merge_s\": {}, \
             \"apply_s\": {}, \"serial_s\": {}, \"epochs\": {}, \"learned_syncs\": {}, \
             \"merge_bg_s\": {}, \"publish_lag\": {}, \"harmonic_mean_ipc\": {}}}{}",
            leg.estimator.label(),
            leg.sync_every,
            leg.train_mode.label(),
            json_num(s.wall_s),
            json_num(s.step_s),
            json_num(s.drain_s),
            json_num(s.merge_s),
            json_num(s.apply_s),
            json_num(s.serial_s),
            s.epochs,
            s.learned_syncs,
            json_num(s.merge_bg_s),
            s.publish_lag,
            json_num(leg.harmonic_mean_ipc),
            if i + 1 < legs.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"shared_reference\": {{\"cores\": 8, \"factor\": 1.0, \"mix\": \"{}\", \
         \"scheme\": \"Mockingjay+Garibaldi\", \"estimator\": \"ewma\", \
         \"records_per_core\": {records}, \"warmup_per_core\": {warmup}, \"seed\": 42, \
         \"wall_s\": {}, \"invalidations\": {}, \"inval_cmds\": {}, \
         \"harmonic_mean_ipc\": {}}},",
        shared.mix,
        json_num(shared.stats.wall_s),
        shared.invalidations,
        shared.stats.inval_cmds,
        json_num(shared.harmonic_mean_ipc),
    );
    let _ = writeln!(json, "  \"micro_ns_per_iter\": {{");
    for (i, (name, ns)) in micro.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {}{}",
            json_num(*ns),
            if i + 1 < micro.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let path = out_dir().join("perf_snapshot.json");
    std::fs::write(&path, &json).expect("write perf snapshot");
    println!("[json] {}", path.display());
}
