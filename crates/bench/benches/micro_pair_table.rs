//! Criterion micro-benchmarks for the Garibaldi structures: pair-table
//! allocate/update, protection queries, helper-table translation and
//! D_PPN insertion — the operations on the LLC controller's critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use garibaldi::{DppnTable, GaribaldiConfig, GaribaldiModule, HelperTable, PairTable};
use garibaldi_types::{CoreId, LineAddr, PageNum, VirtAddr};
use std::hint::black_box;

fn bench_pair_table(c: &mut Criterion) {
    let cfg = GaribaldiConfig::default();
    c.bench_function("pair_table_update", |b| {
        let mut t = PairTable::new(&cfg);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.update_on_data(
                LineAddr::new(i % 100_000),
                i % 3 == 0,
                (i % 8_192) as u16,
                (i % 64) as u8,
                (i % 8) as u8,
                32,
            );
            black_box(t.stats().update_hits)
        });
    });
    c.bench_function("pair_table_query", |b| {
        let mut t = PairTable::new(&cfg);
        for i in 0..100_000u64 {
            t.update_on_data(LineAddr::new(i), true, 0, 0, 0, 32);
        }
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(17);
            black_box(t.query_protect(LineAddr::new(i % 100_000), 0, 32))
        });
    });
}

fn bench_helper_table(c: &mut Criterion) {
    c.bench_function("helper_table_insert_lookup", |b| {
        let mut t = HelperTable::new(128, 4);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.insert(PageNum::new(i % 512), PageNum::new(i));
            black_box(t.lookup(PageNum::new((i + 1) % 512)))
        });
    });
}

fn bench_dppn(c: &mut Criterion) {
    c.bench_function("dppn_insert", |b| {
        let mut t = DppnTable::new(8_192);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(97);
            black_box(t.insert(PageNum::new(i % 50_000)))
        });
    });
}

fn bench_module_flow(c: &mut Criterion) {
    c.bench_function("module_instr_data_flow", |b| {
        let mut g = GaribaldiModule::new(GaribaldiConfig::default(), 8);
        let mut i: u64 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            let core = CoreId::new((i % 8) as u16);
            let pc = VirtAddr::new(0x40_0000 + (i % 4_096) * 64);
            g.on_instr_access(core, pc, LineAddr::new(0x8_000 + i % 4_096), i % 2 == 0, true);
            g.on_data_access(core, pc, LineAddr::new(0x90_000 + i % 1_024), i % 3 == 0);
            black_box(g.stats().pair_updates)
        });
    });
}

criterion_group!(benches, bench_pair_table, bench_helper_table, bench_dppn, bench_module_flow);
criterion_main!(benches);
