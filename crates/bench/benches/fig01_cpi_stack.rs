//! Fig 1 — CPI stacks of SPEC (top) and server (bottom) workloads at core
//! counts 1 (left bar) and N (right bar), under the state-of-the-art LLC
//! scheme (Mockingjay).
//!
//! Paper shape to reproduce: server workloads show a large `ifetch`
//! component that *grows* with core count (LLC contention), while SPEC's
//! ifetch component is negligible at any core count.

use garibaldi_bench::*;
use garibaldi_cache::PolicyKind;

type Job = Box<dyn FnOnce() -> (String, usize, garibaldi_sim::CpiStack) + Send>;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("[engine] {} (GARIBALDI_ENGINE=serial for the min-clock reference)", engine_tag());
    let spec = ["gcc", "gobmk", "bwaves", "lbm", "cam4", "wrf"];
    let server = ["noop", "tpcc", "cassandra", "kafka", "tomcat", "verilator", "dotty", "xalan"];

    let mut jobs: Vec<Job> = Vec::new();
    for &w in spec.iter().chain(server.iter()) {
        for cores in [1usize, scale.cores] {
            let mut s = scale;
            s.cores = cores;
            jobs.push(Box::new(move || {
                let r = run_homogeneous(&s, LlcScheme::plain(PolicyKind::Mockingjay), w, 42);
                (w.to_string(), cores, r.mean_cpi_stack())
            }));
        }
    }
    let results = parallel_runs(jobs);

    let headers = ["workload", "cores", "base", "ifetch", "data", "branch", "total_cpi"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(w, cores, s)| {
            vec![
                w.clone(),
                cores.to_string(),
                format!("{:.3}", s.base),
                format!("{:.3}", s.ifetch),
                format!("{:.3}", s.data),
                format!("{:.3}", s.branch),
                format!("{:.3}", s.total()),
            ]
        })
        .collect();
    print_table("Fig 1: CPI stacks, 1 vs N cores (Mockingjay LLC)", &headers, &rows);
    write_csv("fig01_cpi_stack.csv", &headers, &rows);

    // Headline check: server ifetch CPI share grows with core count.
    let share = |w: &str, cores: usize| {
        results
            .iter()
            .find(|(rw, rc, _)| rw == w && *rc == cores)
            .map(|(_, _, s)| s.ifetch / s.total().max(1e-9))
            .unwrap_or(0.0)
    };
    let server_1: f64 = server.iter().map(|w| share(w, 1)).sum::<f64>() / server.len() as f64;
    let server_n: f64 =
        server.iter().map(|w| share(w, scale.cores)).sum::<f64>() / server.len() as f64;
    let spec_n: f64 = spec.iter().map(|w| share(w, scale.cores)).sum::<f64>() / spec.len() as f64;
    println!(
        "\nifetch share: server 1-core {:.1}% -> {}-core {:.1}%; SPEC {}-core {:.1}%",
        server_1 * 100.0,
        scale.cores,
        server_n * 100.0,
        scale.cores,
        spec_n * 100.0
    );
}
