//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of the
//! paper: it runs the necessary simulations (in parallel across a thread
//! pool), prints the series as an aligned text table, and writes a CSV next
//! to it under `target/garibaldi-results/`.
//!
//! Scale: targets default to [`ExperimentScale::from_env`] — the
//! half-size 8-core configuration — and switch to the paper's full Table 1
//! system under `GARIBALDI_FULL=1`.

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

pub use garibaldi_sim::experiment::{
    geomean, ipc_single, run_homogeneous, run_mix, weighted_speedup,
};
pub use garibaldi_sim::{ExperimentScale, LlcScheme, RunResult, SystemConfig};

/// Directory where harness CSVs are written (the workspace-level
/// `target/garibaldi-results/`, regardless of the bench binary's CWD).
pub fn out_dir() -> PathBuf {
    let dir =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target").join("garibaldi-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into [`out_dir`].
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = out_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", headers.join(",")).expect("write csv");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write csv");
    }
    println!("[csv] {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Runs `jobs` closures in parallel (bounded by available cores) and
/// returns their results in input order.
pub fn parallel_runs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                match job {
                    Some((i, f)) => {
                        let r = f();
                        results.lock().unwrap()[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results.into_inner().unwrap().into_iter().map(|r| r.expect("job ran")).collect()
}

/// Formats a speedup as the paper's "speedup over LRU" delta (e.g. 0.132).
pub fn speedup_over(base: f64, x: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        x / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_preserve_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * 2) as _).collect();
        let out = parallel_runs(jobs);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_over(2.0, 2.2) - 1.1).abs() < 1e-12);
        assert_eq!(speedup_over(0.0, 1.0), 0.0);
    }
}
