//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of the
//! paper: it runs the necessary simulations (in parallel across a thread
//! pool), prints the series as an aligned text table, and writes a CSV next
//! to it under `target/garibaldi-results/`.
//!
//! Scale: targets default to [`ExperimentScale::from_env`] — the
//! half-size 8-core configuration — and switch to the paper's full Table 1
//! system under `GARIBALDI_FULL=1`.
//!
//! Engine: since the fidelity study (`docs/fidelity/`, ARCHITECTURE.md
//! §"Fidelity") every figure target defaults to the **epoch-sharded
//! parallel engine** at the validated default `epoch_cycles`, with
//! `GARIBALDI_INNER_WORKERS` threads per run — and, since the estimator
//! study, with the **ewma** fidelity profile (learned issue latencies +
//! barrier learned-state sync, the measured-best configuration).
//! `GARIBALDI_ENGINE=serial` is the escape hatch back to the serial
//! min-clock reference; `GARIBALDI_WORKERS` / `GARIBALDI_SHARDS` /
//! `GARIBALDI_EPOCH` / `GARIBALDI_ESTIMATOR` override the geometry (see
//! [`bench_engine`]).

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

pub use garibaldi_sim::experiment::{geomean, weighted_speedup};
pub use garibaldi_sim::{
    EngineChoice, EngineConfig, EstimatorKind, ExperimentScale, LlcScheme, RunResult, SimRunner,
    SystemConfig,
};

/// The engine every bench run uses: [`EngineChoice::from_env_or`] with a
/// **parallel** default — [`EngineConfig::default`] geometry (the
/// fidelity-validated `epoch_cycles`), the **ewma** estimator (the
/// measured-best fidelity profile: ≤ 1 % figure-geomean error at the
/// default window vs ~1.7 % for `optimistic`, see `docs/fidelity/`) and
/// [`inner_workers`] threads per run. Set `GARIBALDI_ENGINE=serial` for
/// the serial reference engine, or `GARIBALDI_ESTIMATOR=optimistic` for
/// the pre-estimator parallel engine.
pub fn bench_engine() -> EngineChoice {
    let default = EngineConfig {
        workers: inner_workers(),
        estimator: EstimatorKind::Ewma,
        ..EngineConfig::default()
    };
    EngineChoice::from_env_or(EngineChoice::Parallel(default))
}

/// Per-run worker threads from `GARIBALDI_INNER_WORKERS` (default 1).
/// This feeds [`bench_engine`]'s default geometry; note `GARIBALDI_WORKERS`
/// (when set) overrides it at engine resolution, and [`parallel_runs`]
/// divides the outer job pool by the *resolved* per-run thread count —
/// whichever variable won — so outer jobs × engine workers never
/// oversubscribes the host.
///
/// # Panics
///
/// Panics on an invalid value (0, garbage, overflow) — a typo must not
/// silently serialize the sweep.
pub fn inner_workers() -> usize {
    garibaldi_sim::config::env_positive("GARIBALDI_INNER_WORKERS").unwrap_or(1)
}

/// Threads each bench run will actually use under the resolved engine
/// (the pool divisor for [`parallel_runs`]): the parallel engine's worker
/// count, or 1 for the serial engine.
pub fn per_run_threads() -> usize {
    match bench_engine() {
        EngineChoice::Parallel(c) => c.workers,
        EngineChoice::Serial => 1,
    }
}

/// Identity of the simulation model the benches run under — `"serial"` or
/// `"sharded-s<shards>-e<epoch>"` (see [`EngineChoice::tag`]). Worker
/// count is *not* part of the identity (it never changes results); shard
/// count and epoch window are. Embed this in checkpoint keys so rows
/// produced under different engines are never silently mixed.
pub fn engine_tag() -> String {
    bench_engine().tag()
}

/// Runs `runner` on the bench-default engine (see [`bench_engine`]) —
/// the entry point every figure target's direct simulations go through.
pub fn bench_run(runner: &SimRunner, records: u64, warmup: u64) -> RunResult {
    runner.run_on(records, warmup, bench_engine())
}

/// [`garibaldi_sim::experiment::run_homogeneous`] on the bench-default
/// engine.
pub fn run_homogeneous(
    scale: &ExperimentScale,
    scheme: LlcScheme,
    workload: &str,
    seed: u64,
) -> RunResult {
    garibaldi_sim::experiment::run_homogeneous_on(scale, scheme, workload, seed, bench_engine())
}

/// [`garibaldi_sim::experiment::run_mix`] on the bench-default engine.
pub fn run_mix(
    scale: &ExperimentScale,
    scheme: LlcScheme,
    mix: &garibaldi_trace::WorkloadMix,
    seed: u64,
) -> RunResult {
    garibaldi_sim::experiment::run_mix_on(scale, scheme, mix, seed, bench_engine())
}

/// [`garibaldi_sim::experiment::ipc_single`] on the bench-default engine.
pub fn ipc_single(scale: &ExperimentScale, scheme: LlcScheme, workload: &str, seed: u64) -> f64 {
    garibaldi_sim::experiment::ipc_single_on(scale, scheme, workload, seed, bench_engine())
}

/// Directory where harness CSVs are written (the workspace-level
/// `target/garibaldi-results/`, regardless of the bench binary's CWD).
pub fn out_dir() -> PathBuf {
    let dir =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target").join("garibaldi-results");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", dir.display()));
    dir
}

/// Writes a CSV file into [`out_dir`].
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = out_dir().join(name);
    let write = |path: &std::path::Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", headers.join(","))?;
        for r in rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(())
    };
    write(&path).unwrap_or_else(|e| panic!("cannot write csv {}: {e}", path.display()));
    println!("[csv] {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Runs `jobs` closures in parallel (bounded by available cores) and
/// returns their results in input order.
///
/// The outer pool is divided by [`per_run_threads`] — the thread count of
/// the engine the environment actually resolves to, whether it came from
/// `GARIBALDI_INNER_WORKERS` or a winning `GARIBALDI_WORKERS` — so
/// outer × inner never oversubscribes the host. Use
/// [`parallel_runs_inner`] to pass the divisor explicitly.
pub fn parallel_runs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    parallel_runs_inner(jobs, per_run_threads())
}

/// [`parallel_runs`] with an explicit inner-parallelism divisor: with
/// `inner_workers = k`, at most `available_parallelism / k` jobs run
/// concurrently, so each job may itself use `k` threads (e.g.
/// `SimRunner::run_parallel` with `EngineConfig::with_workers(k)`) without
/// oversubscription.
pub fn parallel_runs_inner<T, F>(jobs: Vec<F>, inner_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let workers = (avail / inner_workers.max(1)).max(1).min(n.max(1));
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                match job {
                    Some((i, f)) => {
                        let r = f();
                        results.lock().unwrap()[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results.into_inner().unwrap().into_iter().map(|r| r.expect("job ran")).collect()
}

/// Checkpoint-aware batch runner: runs the keyed jobs whose key is not yet
/// in `target/garibaldi-results/<file>` (JSON lines, one run per line, see
/// `garibaldi_sim::checkpoint`), appends each fresh result, and returns all
/// results in input order. Interrupted sweeps resume where they stopped —
/// a torn tail from a crash mid-append is salvaged (and reported on
/// stderr) rather than poisoning the file; delete the file to force a
/// full re-run. Fresh rows are framed with the resolved [`engine_tag`] so
/// rows from different engine geometries are never silently mixed.
pub fn parallel_runs_checkpointed<F>(file: &str, jobs: Vec<(String, F)>) -> Vec<RunResult>
where
    F: FnOnce() -> RunResult + Send,
{
    let path = out_dir().join(file);
    let (mut done, salvage) = match garibaldi_sim::checkpoint::load_report(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("[checkpoint] {e} — starting the sweep from scratch");
            Default::default()
        }
    };
    if !salvage.is_clean() {
        eprintln!("[checkpoint] salvage from {}: {salvage}", path.display());
    }
    let mut fresh: Vec<(String, F)> = Vec::new();
    let mut slots: Vec<Result<RunResult, usize>> = Vec::new(); // Err(i) = fresh job i
    for (key, job) in jobs {
        match done.remove(&key) {
            Some(r) => slots.push(Ok(r)),
            None => {
                slots.push(Err(fresh.len()));
                fresh.push((key, job));
            }
        }
    }
    let cached = slots.iter().filter(|s| s.is_ok()).count();
    if cached > 0 {
        println!("[checkpoint] {} of {} runs loaded from {}", cached, slots.len(), path.display());
    }
    // Append each line as its job completes (under a lock — appends come
    // from pool threads), so an interrupted sweep keeps everything that
    // finished before the kill. Transient I/O errors are retried with
    // bounded backoff; a run whose append ultimately fails is still
    // returned (it just re-runs on the next resume).
    let tag = engine_tag();
    let sink = Mutex::new(());
    let path_ref = &path;
    let tag_ref = &tag;
    let sink_ref = &sink;
    let ran = parallel_runs(
        fresh
            .into_iter()
            .map(|(key, f)| {
                move || {
                    let r = f();
                    let _guard = sink_ref.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Err(e) =
                        garibaldi_sim::checkpoint::append_retry(path_ref, tag_ref, &key, &r, 3)
                    {
                        eprintln!("[checkpoint] giving up on append: {e}");
                    }
                    r
                }
            })
            .collect(),
    );
    let mut ran: Vec<Option<RunResult>> = ran.into_iter().map(Some).collect();
    slots
        .into_iter()
        .map(|s| match s {
            Ok(r) => r,
            Err(i) => ran[i].take().expect("fresh job ran once"),
        })
        .collect()
}

/// Formats a speedup as the paper's "speedup over LRU" delta (e.g. 0.132).
pub fn speedup_over(base: f64, x: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        x / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or mutate the engine environment
    /// variables (`parallel_runs`, [`inner_workers`], [`bench_engine`]) so
    /// env-mutating cases cannot race env-reading ones.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` with the engine variables cleared, then restores whatever
    /// was set before (the CI parallel-engine leg exports `GARIBALDI_*`
    /// for the whole process — tests must not strip it from later tests).
    fn with_clean_env<T>(f: impl FnOnce() -> T) -> T {
        let _guard = env_lock();
        let vars = [
            "GARIBALDI_ENGINE",
            "GARIBALDI_WORKERS",
            "GARIBALDI_SHARDS",
            "GARIBALDI_EPOCH",
            "GARIBALDI_ESTIMATOR",
            "GARIBALDI_INNER_WORKERS",
        ];
        let saved: Vec<_> = vars.iter().map(|v| (*v, std::env::var(v).ok())).collect();
        for v in vars {
            std::env::remove_var(v);
        }
        let out = f();
        for (v, val) in saved {
            match val {
                Some(val) => std::env::set_var(v, val),
                None => std::env::remove_var(v),
            }
        }
        out
    }

    #[test]
    fn parallel_runs_preserve_order() {
        let _env = env_lock();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * 2) as _).collect();
        let out = parallel_runs(jobs);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn inner_workers_defaults_and_rejects_garbage() {
        with_clean_env(|| {
            assert_eq!(inner_workers(), 1, "unset → documented default of 1");
            std::env::set_var("GARIBALDI_INNER_WORKERS", "3");
            assert_eq!(inner_workers(), 3);
            for bad in ["0", "many", "9999999999999999999999"] {
                std::env::set_var("GARIBALDI_INNER_WORKERS", bad);
                let err = std::panic::catch_unwind(inner_workers)
                    .expect_err("invalid GARIBALDI_INNER_WORKERS must fail loudly");
                let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(msg.contains("GARIBALDI_INNER_WORKERS"), "names the variable: {msg:?}");
            }
        });
    }

    #[test]
    fn bench_engine_defaults_to_parallel_with_serial_escape_hatch() {
        with_clean_env(|| {
            match bench_engine() {
                EngineChoice::Parallel(c) => {
                    assert_eq!(
                        c,
                        EngineConfig { estimator: EstimatorKind::Ewma, ..EngineConfig::default() },
                        "validated default geometry + the ewma estimator default"
                    );
                }
                EngineChoice::Serial => panic!("benches must default to the parallel engine"),
            }
            std::env::set_var("GARIBALDI_INNER_WORKERS", "2");
            match bench_engine() {
                EngineChoice::Parallel(c) => {
                    assert_eq!(c.workers, 2, "inner workers feed the engine");
                }
                EngineChoice::Serial => panic!("still parallel"),
            }
            std::env::set_var("GARIBALDI_ESTIMATOR", "optimistic");
            match bench_engine() {
                EngineChoice::Parallel(c) => {
                    assert_eq!(c.estimator, EstimatorKind::Optimistic, "estimator escape hatch");
                }
                EngineChoice::Serial => panic!("still parallel"),
            }
            std::env::set_var("GARIBALDI_ENGINE", "serial");
            assert_eq!(bench_engine(), EngineChoice::Serial, "the documented escape hatch");
            assert_eq!(engine_tag(), "serial");
        });
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_over(2.0, 2.2) - 1.1).abs() < 1e-12);
        assert_eq!(speedup_over(0.0, 1.0), 0.0);
    }

    #[test]
    fn inner_parallelism_still_runs_everything_in_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..8usize).map(|i| Box::new(move || i + 1) as _).collect();
        let out = parallel_runs_inner(jobs, 4);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn checkpointed_runs_skip_completed_keys() {
        use garibaldi_cache::PolicyKind;
        use garibaldi_sim::ExperimentScale;
        use garibaldi_trace::WorkloadMix;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let _env = env_lock();
        let file = "test_checkpoint_harness.jsonl";
        let path = out_dir().join(file);
        let _ = std::fs::remove_file(&path);

        let run = || {
            let scale = ExperimentScale::smoke();
            let cfg = SystemConfig::scaled(&scale, LlcScheme::plain(PolicyKind::Lru));
            SimRunner::new(cfg, WorkloadMix::homogeneous("noop", scale.cores), 5).run(400, 100)
        };
        let calls = AtomicUsize::new(0);
        let jobs = |names: [&str; 2]| {
            names
                .into_iter()
                .map(|k| {
                    (k.to_string(), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        run()
                    })
                })
                .collect::<Vec<_>>()
        };

        let first = parallel_runs_checkpointed(file, jobs(["a", "b"]));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "cold checkpoint runs everything");
        let second = parallel_runs_checkpointed(file, jobs(["a", "b"]));
        assert_eq!(calls.load(Ordering::SeqCst), 2, "warm checkpoint runs nothing");
        assert_eq!(first, second, "checkpointed results round-trip bit-identically");
        let _ = std::fs::remove_file(&path);
    }
}
