//! DDR5-like memory channel timing model.
//!
//! Models the paper's scaled memory subsystem (Table 1): 2-channel
//! DDR5-6400, 102.4 GB/s aggregate, 49 ns device access latency, with
//! memory-controller queueing. Requests are spread across channels by
//! address hash; each channel serializes transfers at its line-transfer
//! occupancy, so bandwidth saturation shows up as queueing delay — the
//! effect that matters for multi-core LLC-miss storms.
//!
//! # Examples
//!
//! ```
//! use garibaldi_mem::{DramConfig, DramModel};
//! use garibaldi_types::LineAddr;
//!
//! let mut dram = DramModel::new(DramConfig::default());
//! let lat = dram.access(LineAddr::new(0x1234), /*now=*/0, /*write=*/false);
//! assert!(lat >= DramConfig::default().access_latency);
//! ```

#![warn(missing_docs)]

use garibaldi_types::LineAddr;
use serde::{Deserialize, Serialize};

/// DRAM subsystem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Device access latency in core cycles (49 ns @ 3 GHz ≈ 147).
    pub access_latency: u64,
    /// Channel occupancy per 64 B line transfer in core cycles
    /// (64 B / 51.2 GB/s ≈ 1.25 ns ≈ 4 cycles @ 3 GHz).
    pub transfer_occupancy: u64,
    /// In-flight requests a channel's controller queue accepts before
    /// back-pressure (queueing delay) kicks in.
    pub queue_depth: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self { channels: 2, access_latency: 147, transfer_occupancy: 4, queue_depth: 16 }
    }
}

/// Aggregate event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writes (writebacks) served.
    pub writes: u64,
    /// Total queueing delay imposed (cycles).
    pub queue_delay: u64,
    /// Requests that experienced queueing.
    pub queued_requests: u64,
}

impl DramStats {
    /// Total lines transferred.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.accesses() * garibaldi_types::LINE_BYTES
    }
}

#[derive(Debug)]
struct Channel {
    /// Completion times of in-flight transfers. Unsorted: the population
    /// is bounded by `queue_depth` (an entry is only pushed after the
    /// over-depth pop), so linear expiry/min scans over a flat, fully
    /// resident array beat a binary heap's pointer-chasing sift — the
    /// LLC-miss drain loop hits this on every miss.
    inflight: Vec<u64>,
}

/// The DRAM timing model.
#[derive(Debug)]
pub struct DramModel {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl DramModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or zero queue depth.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "zero DRAM channels");
        assert!(cfg.queue_depth > 0, "zero queue depth");
        Self {
            channels: (0..cfg.channels)
                .map(|_| Channel { inflight: Vec::with_capacity(cfg.queue_depth) })
                .collect(),
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets counters (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    #[inline]
    fn channel_of(&self, line: LineAddr) -> usize {
        (line.get().wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as usize % self.channels.len()
    }

    /// Perf-only host-CPU hint for the occupancy heap of `line`'s channel
    /// (see [`garibaldi_types::hint`]): [`DramModel::access`] peeks and
    /// pops the heap head, so a drain loop that knows a miss is W requests
    /// away hints the backing buffer up front. Inert — no stats, no heap
    /// changes.
    #[inline]
    pub fn prefetch_channel(&self, line: LineAddr) {
        let ch = &self.channels[self.channel_of(line)];
        if let Some(head) = ch.inflight.first() {
            garibaldi_types::hint::prefetch_read(head);
        }
    }

    /// Serves a line transfer arriving at `now`; returns its total latency
    /// (queueing + access).
    pub fn access(&mut self, line: LineAddr, now: u64, write: bool) -> u64 {
        let depth = self.cfg.queue_depth;
        let ch_idx = self.channel_of(line);
        let ch = &mut self.channels[ch_idx];

        // Expire completed transfers (the heap equivalent popped every
        // entry ≤ now — same set removed, order is irrelevant because
        // only the minimum completion time is ever observed below).
        ch.inflight.retain(|&t| t > now);
        let queue_delay = if ch.inflight.len() >= depth {
            let mut mi = 0;
            for (i, &t) in ch.inflight.iter().enumerate() {
                if t < ch.inflight[mi] {
                    mi = i;
                }
            }
            let earliest = ch.inflight.swap_remove(mi);
            self.stats.queued_requests += 1;
            earliest.saturating_sub(now)
        } else {
            0
        };
        self.stats.queue_delay += queue_delay;
        let completion = now + queue_delay + self.cfg.transfer_occupancy;
        ch.inflight.push(completion);

        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        queue_delay + self.cfg.access_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_access_latency() {
        let mut d = DramModel::new(DramConfig::default());
        assert_eq!(d.access(LineAddr::new(1), 0, false), 147);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn saturation_causes_queueing() {
        let cfg = DramConfig { channels: 1, queue_depth: 2, ..Default::default() };
        let mut d = DramModel::new(cfg);
        let l = LineAddr::new(1);
        assert_eq!(d.access(l, 0, false), 147);
        assert_eq!(d.access(l, 0, false), 147);
        // Third concurrent request waits for the first transfer slot.
        let lat = d.access(l, 0, false);
        assert!(lat > 147, "queued latency {lat}");
        assert_eq!(d.stats().queued_requests, 1);
    }

    #[test]
    fn channels_spread_load() {
        let mut d =
            DramModel::new(DramConfig { channels: 2, queue_depth: 1, ..Default::default() });
        // Find two lines on different channels.
        let a = LineAddr::new(0);
        let mut b = LineAddr::new(1);
        while d.channel_of(b) == d.channel_of(a) {
            b = LineAddr::new(b.get() + 1);
        }
        assert_eq!(d.access(a, 0, false), 147);
        assert_eq!(d.access(b, 0, false), 147, "independent channel unaffected");
    }

    #[test]
    fn writes_counted_and_bytes() {
        let mut d = DramModel::new(DramConfig::default());
        d.access(LineAddr::new(1), 0, true);
        d.access(LineAddr::new(2), 0, false);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes(), 128);
    }

    #[test]
    fn reset_clears_stats() {
        let mut d = DramModel::new(DramConfig::default());
        d.access(LineAddr::new(1), 0, false);
        d.reset_stats();
        assert_eq!(d.stats().accesses(), 0);
    }
}
