//! Golden-metrics regression gate for the epoch-sharded engine
//! (`ISSUE 3` tentpole; methodology in `docs/ARCHITECTURE.md` §"Fidelity").
//!
//! Two layers of protection, both at a CI-sized scale:
//!
//! 1. **Serial goldens** — every suite point's serial-engine `RunResult`
//!    is committed to `tests/golden/fidelity_baselines.jsonl` (checkpoint
//!    format). A change that moves any figure-bearing metric by more than
//!    float-noise fails here, so figure drift is caught by tier-1 rather
//!    than by a reviewer eyeballing bench output. Regenerate deliberately
//!    with `GARIBALDI_BLESS=1 cargo test --test fidelity`.
//! 2. **Parallel tolerance** — the parallel engine at the default
//!    `epoch_cycles` (plus any `GARIBALDI_FIDELITY_EPOCH` off-default
//!    point, which the CI `fidelity-gate` job exercises) must keep every
//!    figure-level geomean within the hard gate of the serial goldens.

use garibaldi_sim::experiment::run_mix_on;
use garibaldi_sim::fidelity::{FidelityJob, FidelitySuite};
use garibaldi_sim::{
    checkpoint, EngineConfig, EstimatorKind, ExperimentScale, RunResult, TrainMode,
};
use std::collections::HashMap;
use std::path::PathBuf;

/// Figure-geomean tolerance the parallel engine must meet (the ISSUE's
/// hard gate; the measured study value at the chosen default is well
/// below — see docs/fidelity/).
const HARD_GATE: f64 = 0.02;

/// Tolerance for re-running the serial engine against its own golden:
/// generous float-noise headroom (libm differences across hosts), still
/// orders of magnitude below any real figure movement.
const GOLDEN_TOL: f64 = 1e-6;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fidelity_baselines.jsonl")
}

/// The gate suite over an explicit estimator axis: a trimmed
/// mini-fig11/fig12 at a gate-sized scale — large enough that the default
/// epoch window fits several times into a run, small enough for tier-1.
fn gate_suite_with(estimators: Vec<EstimatorKind>) -> FidelitySuite {
    let scale = ExperimentScale {
        factor: 0.25,
        cores: 4,
        records_per_core: 12_000,
        warmup_per_core: 3_000,
        color_period: 4_000,
    };
    let default_epoch = EngineConfig::default().epoch_cycles;
    let mut grid = vec![default_epoch];
    if let Some(e) = garibaldi_sim::config::env_positive("GARIBALDI_FIDELITY_EPOCH") {
        if e as u64 != default_epoch {
            grid.push(e as u64);
        }
    }
    let mut suite = FidelitySuite::paper_figures(scale, 1, &["tpcc", "twitter"], grid);
    suite.estimators = estimators;
    // The sync_every axis (ewma learned-state sync cadence): default from
    // the engine config; `GARIBALDI_SYNC_EVERY` overrides so manual
    // sweeps can gate an off-default cadence too.
    if let Some(k) = garibaldi_sim::config::env_positive("GARIBALDI_SYNC_EVERY") {
        suite.sync_every = k;
    }
    // The train-mode axis: `GARIBALDI_TRAIN_MODE=async` runs the whole
    // parallel block in async training (deferred learned-state install +
    // privatized pair batches), which the CI `async-train` leg gates at
    // the same hard tolerance as sync.
    if let Some(m) = TrainMode::parse(
        "GARIBALDI_TRAIN_MODE",
        std::env::var("GARIBALDI_TRAIN_MODE").ok().as_deref(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
    {
        suite.train_mode = m;
    }
    suite
}

/// The tolerance-gate suite: every estimator by default, or just the one
/// `GARIBALDI_ESTIMATOR` names (the CI fidelity matrix runs one leg per
/// estimator).
fn gate_suite() -> FidelitySuite {
    let est = EstimatorKind::parse(
        "GARIBALDI_ESTIMATOR",
        std::env::var("GARIBALDI_ESTIMATOR").ok().as_deref(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    gate_suite_with(match est {
        Some(k) => vec![k],
        None => EstimatorKind::ALL.to_vec(),
    })
}

fn run_jobs(suite: &FidelitySuite, jobs: &[FidelityJob]) -> Vec<RunResult> {
    jobs.iter()
        .map(|j| {
            let p = &suite.points[j.point];
            run_mix_on(&suite.scale, p.scheme.clone(), &p.mix, p.seed, j.engine)
        })
        .collect()
}

fn load_goldens() -> HashMap<String, RunResult> {
    let path = golden_path();
    let (m, salvage) = checkpoint::load_report(&path).unwrap_or_else(|e| panic!("{e}"));
    // The committed goldens predate the framed format — they load as
    // version mismatches by design — but any *garbage* or torn tail means
    // the file was damaged, which a gate must never paper over.
    assert_eq!(salvage.skipped_garbage, 0, "golden file {} is damaged ({salvage})", path.display());
    assert!(!salvage.truncated_tail, "golden file {} has a torn tail", path.display());
    assert!(
        !m.is_empty(),
        "no golden baselines at {} — generate them with \
         GARIBALDI_BLESS=1 cargo test --test fidelity",
        path.display()
    );
    m
}

/// The serial engine still reproduces its committed golden metrics.
///
/// The bless run (`GARIBALDI_BLESS=1`) also regenerates the
/// parallel-engine block at the default `epoch_cycles` with the
/// `Optimistic` estimator — the exact-match baselines
/// `optimistic_parallel_matches_golden_baselines` gates on.
#[test]
fn serial_engine_matches_golden_baselines() {
    // Estimator axis pinned to Optimistic and train mode pinned to Sync:
    // the serial block is independent of both, and the blessed parallel
    // block must always be the (default epoch, Optimistic, sync) one,
    // whatever GARIBALDI_ESTIMATOR / GARIBALDI_TRAIN_MODE say.
    let mut suite = gate_suite_with(vec![EstimatorKind::Optimistic]);
    suite.train_mode = TrainMode::Sync;
    let jobs = suite.jobs();
    let serial_jobs = &jobs[..suite.points.len()];
    let serial = run_jobs(&suite, serial_jobs);

    if std::env::var("GARIBALDI_BLESS").as_deref() == Ok("1") {
        // The first parallel block of `jobs()` is always the default
        // epoch window (the gate grid leads with it).
        let par_jobs = &jobs[suite.points.len()..2 * suite.points.len()];
        let par = run_jobs(&suite, par_jobs);
        let path = golden_path();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut text = String::new();
        for (j, r) in serial_jobs.iter().zip(&serial).chain(par_jobs.iter().zip(&par)) {
            text.push_str(&checkpoint::to_json_line(&j.key, r));
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();
        println!(
            "blessed {} baselines into {}",
            serial_jobs.len() + par_jobs.len(),
            path.display()
        );
        return;
    }

    let goldens = load_goldens();
    for (j, r) in serial_jobs.iter().zip(&serial) {
        let golden = goldens.get(&j.key).unwrap_or_else(|| {
            panic!(
                "{} missing from {} — the gate suite changed; re-bless with \
                 GARIBALDI_BLESS=1 cargo test --test fidelity",
                j.key,
                golden_path().display()
            )
        });
        let diff = r.diff(golden);
        assert!(
            diff.within(GOLDEN_TOL),
            "{}: serial engine moved beyond float noise from its golden: {:?}\n\
             If this figure movement is intended, re-bless with \
             GARIBALDI_BLESS=1 cargo test --test fidelity",
            j.key,
            diff.violations(GOLDEN_TOL)
        );
    }
}

/// The `Optimistic` estimator reproduces the committed parallel-engine
/// numbers exactly (float-noise tolerance): the issue-latency estimation
/// refactor must never silently change the default parallel engine's
/// simulated results.
#[test]
fn optimistic_parallel_matches_golden_baselines() {
    if std::env::var("GARIBALDI_BLESS").as_deref() == Ok("1") {
        return; // blessing run: baselines are being rewritten.
    }
    // Pinned to Optimistic and sync training regardless of
    // GARIBALDI_ESTIMATOR / GARIBALDI_TRAIN_MODE: this test is the
    // bit-compatibility backstop, so it must run the (Optimistic, sync)
    // block even on the CI ewma and async-train matrix legs.
    let mut suite = gate_suite_with(vec![EstimatorKind::Optimistic]);
    suite.train_mode = TrainMode::Sync;
    let jobs = suite.jobs();
    let n = suite.points.len();
    // The first parallel block is the default epoch window.
    let par_jobs = &jobs[n..2 * n];
    let par = run_jobs(&suite, par_jobs);
    let goldens = load_goldens();
    for (j, r) in par_jobs.iter().zip(&par) {
        let golden = goldens.get(&j.key).unwrap_or_else(|| {
            panic!(
                "{} missing from {} — re-bless with GARIBALDI_BLESS=1 cargo test --test fidelity",
                j.key,
                golden_path().display()
            )
        });
        let diff = r.diff(golden);
        assert!(
            diff.within(GOLDEN_TOL),
            "{}: Optimistic parallel engine moved beyond float noise from its golden: {:?}\n\
             The Optimistic path must stay bit-compatible; if this movement is a deliberate \
             model change, re-bless with GARIBALDI_BLESS=1 cargo test --test fidelity",
            j.key,
            diff.violations(GOLDEN_TOL)
        );
    }
}

/// The parallel engine keeps every figure-level geomean within the hard
/// gate of the committed serial goldens, at the default `epoch_cycles`
/// and at any `GARIBALDI_FIDELITY_EPOCH` override.
#[test]
fn parallel_engine_within_hard_gate_of_goldens() {
    if std::env::var("GARIBALDI_BLESS").as_deref() == Ok("1") {
        return; // blessing run: baselines are being rewritten.
    }
    let suite = gate_suite();
    let jobs = suite.jobs();
    let n = suite.points.len();
    let goldens = load_goldens();
    // Serial block from the goldens (drift there is the other test's job —
    // gating the parallel engine against *committed* numbers keeps the two
    // failure modes separable); parallel blocks run live.
    let mut results: Vec<RunResult> = jobs[..n]
        .iter()
        .map(|j| {
            goldens
                .get(&j.key)
                .unwrap_or_else(|| panic!("{} missing — re-bless (see test docs)", j.key))
                .clone()
        })
        .collect();
    results.extend(run_jobs(&suite, &jobs[n..]));

    let report = suite.assemble(&results);
    for &epoch in &suite.epoch_grid {
        let err = report.max_figure_err(epoch);
        assert!(
            err <= HARD_GATE,
            "figure-geomean error {:.4}% at epoch_cycles={epoch} exceeds the \
             {:.1}% hard gate\n{}",
            err * 100.0,
            HARD_GATE * 100.0,
            report.human_table()
        );
    }
}
