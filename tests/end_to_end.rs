//! End-to-end integration: every LLC scheme runs a multi-core simulation to
//! completion with internally consistent statistics.

use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::run_homogeneous;
use garibaldi_sim::{ExperimentScale, LlcScheme};

fn scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn every_policy_completes_with_plausible_metrics() {
    for kind in PolicyKind::ALL {
        let r = run_homogeneous(&scale(), LlcScheme::plain(kind), "noop", 3);
        assert_eq!(r.cores.len(), scale().cores, "{kind}");
        for c in &r.cores {
            assert!(c.instrs > 0, "{kind}: no instructions retired");
            assert!(c.ipc > 0.01 && c.ipc < 8.0, "{kind}: implausible IPC {}", c.ipc);
            let stack_total = c.stack.total();
            assert!(
                (stack_total - c.cycles).abs() / c.cycles < 1e-6,
                "{kind}: CPI stack ({stack_total}) must add up to cycles ({})",
                c.cycles
            );
        }
    }
}

#[test]
fn every_policy_completes_with_garibaldi_attached() {
    for kind in PolicyKind::ALL {
        let r = run_homogeneous(&scale(), LlcScheme::with_garibaldi(kind), "tpcc", 3);
        let g = r.garibaldi.expect("garibaldi configured");
        assert!(g.stats.instr_accesses > 0, "{kind}: module saw no traffic");
        assert!(g.color_ticks > 0, "{kind}: coloring timer never ticked");
    }
}

#[test]
fn cache_stats_are_internally_consistent() {
    let r = run_homogeneous(&scale(), LlcScheme::plain(PolicyKind::Lru), "cassandra", 5);
    for (name, s) in [("l1", &r.l1), ("l2", &r.l2), ("llc", &r.llc)] {
        assert!(s.hits() <= s.accesses(), "{name}: hits exceed accesses");
        assert!(s.i_hits <= s.i_accesses, "{name}");
        assert!(s.d_hits <= s.d_accesses, "{name}");
        assert!(s.writebacks <= s.evictions, "{name}: writebacks exceed evictions");
        assert!(s.i_evictions <= s.evictions, "{name}");
    }
    // Traffic funnels: L2 sees at most what L1 misses (demand), plus
    // writeback/prefetch side channels are bounded by totals.
    assert!(r.l2.accesses() <= r.l1.misses() + r.l1.prefetch_fills + 10);
    assert!(r.dram.reads + r.dram.writes > 0, "memory saw traffic");
}

#[test]
fn heterogeneous_mix_runs_and_reports_per_core_workloads() {
    use garibaldi_sim::SimRunner;
    use garibaldi_sim::SystemConfig;
    use garibaldi_trace::WorkloadMix;
    let s = scale();
    let cfg = SystemConfig::scaled(&s, LlcScheme::mockingjay_garibaldi());
    let mix =
        WorkloadMix { slots: vec!["tpcc".into(), "gcc".into(), "verilator".into(), "lbm".into()] };
    let r = SimRunner::new(cfg, mix, 9).run(s.records_per_core, s.warmup_per_core);
    assert_eq!(r.cores[0].workload, "tpcc");
    assert_eq!(r.cores[1].workload, "gcc");
    assert!(r.ipc_sum() > 0.0);
    assert!(r.harmonic_mean_ipc() <= r.cores.iter().map(|c| c.ipc).fold(0.0, f64::max));
}

#[test]
fn energy_scales_with_runtime() {
    let short = run_homogeneous(&scale(), LlcScheme::plain(PolicyKind::Lru), "noop", 3);
    let mut bigger = scale();
    bigger.records_per_core *= 2;
    let long = run_homogeneous(&bigger, LlcScheme::plain(PolicyKind::Lru), "noop", 3);
    assert!(long.energy.total_j() > short.energy.total_j());
}
