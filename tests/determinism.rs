//! Reproducibility: identical (config, mix, seed) triples give bitwise
//! identical results; different seeds differ.

use garibaldi_cache::PolicyKind;
use garibaldi_sim::{ExperimentScale, LlcScheme, SimRunner, SystemConfig};
use garibaldi_trace::WorkloadMix;

fn run(seed: u64, scheme: LlcScheme) -> garibaldi_sim::RunResult {
    let s = ExperimentScale::smoke();
    let cfg = SystemConfig::scaled(&s, scheme);
    SimRunner::new(cfg, WorkloadMix::homogeneous("twitter", s.cores), seed)
        .run(s.records_per_core, s.warmup_per_core)
}

#[test]
fn same_seed_same_everything() {
    for scheme in [LlcScheme::plain(PolicyKind::Mockingjay), LlcScheme::mockingjay_garibaldi()] {
        let a = run(42, scheme.clone());
        let b = run(42, scheme.clone());
        assert_eq!(a.llc, b.llc, "{}", scheme.label());
        assert_eq!(a.dram, b.dram, "{}", scheme.label());
        for (ca, cb) in a.cores.iter().zip(&b.cores) {
            assert_eq!(ca.instrs, cb.instrs);
            assert!((ca.cycles - cb.cycles).abs() < 1e-9);
        }
        if let (Some(ga), Some(gb)) = (&a.garibaldi, &b.garibaldi) {
            assert_eq!(ga.stats, gb.stats);
            assert_eq!(ga.final_threshold, gb.final_threshold);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(1, LlcScheme::plain(PolicyKind::Lru));
    let b = run(2, LlcScheme::plain(PolicyKind::Lru));
    assert_ne!(a.llc.accesses(), b.llc.accesses());
}

#[test]
fn scheme_changes_behaviour() {
    let a = run(42, LlcScheme::plain(PolicyKind::Lru));
    let b = run(42, LlcScheme::plain(PolicyKind::Mockingjay));
    assert_ne!(a.llc.hits(), b.llc.hits(), "policies must differ behaviourally");
}
