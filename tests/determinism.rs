//! Reproducibility: identical (config, mix, seed) triples give bitwise
//! identical results; different seeds differ.

use garibaldi_cache::PolicyKind;
use garibaldi_sim::{EngineConfig, ExperimentScale, LlcScheme, SimRunner, SystemConfig};
use garibaldi_trace::WorkloadMix;

fn run(seed: u64, scheme: LlcScheme) -> garibaldi_sim::RunResult {
    let s = ExperimentScale::smoke();
    let cfg = SystemConfig::scaled(&s, scheme);
    SimRunner::new(cfg, WorkloadMix::homogeneous("twitter", s.cores), seed)
        .run(s.records_per_core, s.warmup_per_core)
}

fn runner(seed: u64, scheme: LlcScheme, cores: usize) -> SimRunner {
    let s = ExperimentScale { cores, ..ExperimentScale::smoke() };
    let cfg = SystemConfig::scaled(&s, scheme);
    SimRunner::new(cfg, WorkloadMix::homogeneous("twitter", cores), seed)
}

/// The sharded engine's determinism contract: same seed ⇒ byte-identical
/// `RunResult` for `workers = 1` vs `workers = N`. Exercised across both a
/// plain policy and the full Garibaldi stack, and with a core count that
/// does not divide evenly into clusters or shard chunks.
#[test]
fn parallel_engine_worker_count_invariance() {
    let s = ExperimentScale::smoke();
    for scheme in [LlcScheme::plain(PolicyKind::Mockingjay), LlcScheme::mockingjay_garibaldi()] {
        for cores in [s.cores, 6] {
            let base = runner(42, scheme.clone(), cores).run_parallel(
                s.records_per_core,
                s.warmup_per_core,
                &EngineConfig::with_workers(1),
            );
            for workers in [2, 4] {
                let r = runner(42, scheme.clone(), cores).run_parallel(
                    s.records_per_core,
                    s.warmup_per_core,
                    &EngineConfig::with_workers(workers),
                );
                assert_eq!(base, r, "{} cores={cores} workers={workers}", scheme.label());
            }
        }
    }
}

/// `sync_every` (the ewma learned-state sync cadence) is inert under the
/// `Optimistic` estimator — no sync ever runs there, so results must be
/// byte-identical for any cadence — and under `Ewma` every cadence keeps
/// the worker-count byte-invariance contract.
#[test]
fn sync_every_is_inert_under_optimistic_and_deterministic_under_ewma() {
    use garibaldi_sim::EstimatorKind;
    let s = ExperimentScale::smoke();
    let scheme = LlcScheme::mockingjay_garibaldi();
    let at = |estimator, sync_every, workers| {
        runner(42, scheme.clone(), s.cores).run_parallel(
            s.records_per_core,
            s.warmup_per_core,
            &EngineConfig { estimator, sync_every, workers, ..EngineConfig::default() },
        )
    };
    let opt_base = at(EstimatorKind::Optimistic, 1, 1);
    for k in [2usize, 7, 1000] {
        assert_eq!(opt_base, at(EstimatorKind::Optimistic, k, 1), "optimistic moved at k={k}");
    }
    for k in [1usize, 4, 16] {
        let base = at(EstimatorKind::Ewma, k, 1);
        for workers in [2, 4] {
            assert_eq!(base, at(EstimatorKind::Ewma, k, workers), "ewma k={k} workers={workers}");
        }
    }
    // The knob is actually wired: under ewma the engine reports one sync
    // per barrier at k=1 and none at a cadence longer than the run, while
    // under optimistic it never syncs at any cadence. (Smoke-scale runs
    // are too short for the cadence to move figure metrics — the fidelity
    // suite measures that at scale — so the wiring check reads the
    // engine's own account instead of asserting metric movement.)
    let syncs = |estimator, sync_every| {
        let (_, stats) = runner(42, scheme.clone(), s.cores).run_parallel_stats(
            s.records_per_core,
            s.warmup_per_core,
            &EngineConfig { estimator, sync_every, ..EngineConfig::default() },
        );
        (stats.learned_syncs, stats.barriers)
    };
    let (s1, barriers) = syncs(EstimatorKind::Ewma, 1);
    assert_eq!(s1, barriers, "ewma k=1 syncs at every barrier");
    assert_eq!(syncs(EstimatorKind::Ewma, 1_000_000).0, 0, "cadence beyond run ⇒ no sync");
    let (s3, barriers3) = syncs(EstimatorKind::Ewma, 3);
    assert_eq!(s3, barriers3 / 3, "every third barrier syncs");
    assert_eq!(syncs(EstimatorKind::Optimistic, 1).0, 0, "optimistic never syncs");
}

/// Async training keeps every determinism contract: byte-identical
/// reruns, worker-count invariance, and a publish schedule that is a
/// pure function of the barrier count. The accounting proves the
/// deferred path actually ran: each async sync installs at the next
/// barrier's entry (`publish_lag` = 1 barrier per sync) and the sync
/// count matches the sync-mode cadence — the deferral never skips or
/// doubles a sync, except the final one when the run ends before its
/// install barrier.
#[test]
fn async_training_is_deterministic_and_publishes_one_barrier_late() {
    use garibaldi_sim::{EstimatorKind, TrainMode};
    let s = ExperimentScale::smoke();
    let scheme = LlcScheme::mockingjay_garibaldi();
    let eng = |workers, sync_every, train_mode| EngineConfig {
        estimator: EstimatorKind::Ewma,
        sync_every,
        workers,
        train_mode,
        ..EngineConfig::default()
    };
    for k in [1usize, 4] {
        let base = runner(42, scheme.clone(), s.cores).run_parallel(
            s.records_per_core,
            s.warmup_per_core,
            &eng(1, k, TrainMode::Async),
        );
        let again = runner(42, scheme.clone(), s.cores).run_parallel(
            s.records_per_core,
            s.warmup_per_core,
            &eng(1, k, TrainMode::Async),
        );
        assert_eq!(base, again, "async k={k} must be reproducible");
        for workers in [2, 4] {
            let r = runner(42, scheme.clone(), s.cores).run_parallel(
                s.records_per_core,
                s.warmup_per_core,
                &eng(workers, k, TrainMode::Async),
            );
            assert_eq!(base, r, "async k={k} workers={workers}");
        }
    }
    let stats = |train_mode| {
        let (_, st) = runner(42, scheme.clone(), s.cores).run_parallel_stats(
            s.records_per_core,
            s.warmup_per_core,
            &eng(1, 1, train_mode),
        );
        st
    };
    let sync = stats(TrainMode::Sync);
    let async_ = stats(TrainMode::Async);
    assert_eq!(sync.publish_lag, 0, "sync mode installs at the exporting barrier");
    assert_eq!(async_.publish_lag, async_.learned_syncs, "async lags one barrier per sync");
    assert!(async_.learned_syncs > 0, "ewma k=1 must sync at smoke scale");
    assert!(
        sync.learned_syncs - async_.learned_syncs <= 1,
        "deferral may only drop the final in-flight sync (sync {} vs async {})",
        sync.learned_syncs,
        async_.learned_syncs
    );
}

/// Dumped record streams replay bit-identically on the sharded backend.
#[test]
fn parallel_engine_replay_matches_live_generation() {
    let s = ExperimentScale::smoke();
    let r = runner(42, LlcScheme::mockingjay_garibaldi(), s.cores);
    let streams = r.generate_streams(s.records_per_core + s.warmup_per_core);
    let eng = EngineConfig::with_workers(2);
    let live = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let replayed = r.run_parallel_replay(&streams, s.records_per_core, s.warmup_per_core, &eng);
    assert_eq!(live, replayed);
}

#[test]
fn same_seed_same_everything() {
    for scheme in [LlcScheme::plain(PolicyKind::Mockingjay), LlcScheme::mockingjay_garibaldi()] {
        let a = run(42, scheme.clone());
        let b = run(42, scheme.clone());
        assert_eq!(a.llc, b.llc, "{}", scheme.label());
        assert_eq!(a.dram, b.dram, "{}", scheme.label());
        for (ca, cb) in a.cores.iter().zip(&b.cores) {
            assert_eq!(ca.instrs, cb.instrs);
            assert!((ca.cycles - cb.cycles).abs() < 1e-9);
        }
        if let (Some(ga), Some(gb)) = (&a.garibaldi, &b.garibaldi) {
            assert_eq!(ga.stats, gb.stats);
            assert_eq!(ga.final_threshold, gb.final_threshold);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(1, LlcScheme::plain(PolicyKind::Lru));
    let b = run(2, LlcScheme::plain(PolicyKind::Lru));
    assert_ne!(a.llc.accesses(), b.llc.accesses());
}

#[test]
fn scheme_changes_behaviour() {
    let a = run(42, LlcScheme::plain(PolicyKind::Lru));
    let b = run(42, LlcScheme::plain(PolicyKind::Mockingjay));
    assert_ne!(a.llc.hits(), b.llc.hits(), "policies must differ behaviourally");
}
