//! Environment-driven engine selection, end to end.
//!
//! These tests mutate real environment variables, so they live in their
//! own test binary (its own process) and serialize on one mutex — the
//! other test binaries never read these variables while this one runs.

use garibaldi_sim::{
    EngineChoice, EngineConfig, EstimatorKind, ExperimentScale, LlcScheme, RunResult, SimRunner,
    SystemConfig, TrainMode,
};
use garibaldi_trace::WorkloadMix;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

const VARS: [&str; 8] = [
    "GARIBALDI_ENGINE",
    "GARIBALDI_WORKERS",
    "GARIBALDI_SHARDS",
    "GARIBALDI_EPOCH",
    "GARIBALDI_ESTIMATOR",
    "GARIBALDI_SYNC_EVERY",
    "GARIBALDI_TRAIN_MODE",
    "GARIBALDI_BARRIER_TIMEOUT_S",
];

/// Runs `f` with exactly `vars` set, restoring a clean slate after.
fn with_env<T>(vars: &[(&str, &str)], f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for v in VARS {
        std::env::remove_var(v);
    }
    for (k, v) in vars {
        std::env::set_var(k, v);
    }
    let out = f();
    for v in VARS {
        std::env::remove_var(v);
    }
    out
}

fn runner() -> SimRunner {
    let s = ExperimentScale::smoke();
    let cfg = SystemConfig::scaled(&s, LlcScheme::mockingjay_garibaldi());
    SimRunner::new(cfg, WorkloadMix::homogeneous("twitter", s.cores), 42)
}

fn smoke_run(r: &SimRunner) -> RunResult {
    let s = ExperimentScale::smoke();
    r.run(s.records_per_core, s.warmup_per_core)
}

/// `GARIBALDI_ENGINE=serial` reproduces the serial engine exactly — even
/// when `GARIBALDI_WORKERS` would otherwise force the parallel one (the
/// escape hatch the benches' parallel-default flip documents).
#[test]
fn engine_serial_reproduces_serial_engine() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let reference = r.run_serial(s.records_per_core, s.warmup_per_core);
    let forced =
        with_env(&[("GARIBALDI_ENGINE", "serial"), ("GARIBALDI_WORKERS", "2")], || smoke_run(&r));
    assert_eq!(reference, forced);
    let plain = with_env(&[("GARIBALDI_ENGINE", "serial")], || smoke_run(&r));
    assert_eq!(reference, plain);
}

/// `GARIBALDI_ENGINE=parallel` routes through the epoch-sharded engine
/// with env-overridable geometry.
#[test]
fn engine_parallel_forces_parallel_engine() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let eng = EngineConfig { workers: 1, epoch_cycles: 7_000, llc_shards: 4, ..Default::default() };
    let reference = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let forced = with_env(
        &[("GARIBALDI_ENGINE", "parallel"), ("GARIBALDI_EPOCH", "7000"), ("GARIBALDI_SHARDS", "4")],
        || smoke_run(&r),
    );
    assert_eq!(reference, forced);
    // Serial differs from the 7k-epoch parallel run on this workload
    // (otherwise the two assertions above prove nothing).
    let serial = r.run_serial(s.records_per_core, s.warmup_per_core);
    assert_ne!(serial, reference, "engines must be distinguishable at smoke scale");
}

/// `GARIBALDI_ESTIMATOR` alone selects the parallel engine with that
/// estimator (precedence step 2: the estimator is a parallel-engine
/// model axis) — and reproduces the explicitly configured run exactly.
#[test]
fn estimator_alone_selects_parallel_with_that_estimator() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let eng = EngineConfig { estimator: EstimatorKind::Ewma, ..Default::default() };
    let reference = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let forced = with_env(&[("GARIBALDI_ESTIMATOR", "ewma")], || smoke_run(&r));
    assert_eq!(reference, forced);
    // The estimator is a *model* axis: at smoke scale the ewma run must
    // differ from the optimistic default (otherwise the test proves
    // nothing about which estimator actually ran).
    let optimistic =
        r.run_parallel(s.records_per_core, s.warmup_per_core, &EngineConfig::default());
    assert_ne!(optimistic, reference, "estimators must be distinguishable at smoke scale");
    // `GARIBALDI_ENGINE=serial` still wins over the estimator
    // (precedence step 1).
    let serial_forced =
        with_env(&[("GARIBALDI_ENGINE", "serial"), ("GARIBALDI_ESTIMATOR", "ewma")], || {
            smoke_run(&r)
        });
    assert_eq!(serial_forced, r.run_serial(s.records_per_core, s.warmup_per_core));
}

/// `GARIBALDI_SYNC_EVERY` overrides the learned-sync cadence of an
/// env-selected parallel engine and reproduces the explicitly configured
/// run exactly; under the ewma profile the cadence is a real model knob.
#[test]
fn sync_every_env_overrides_the_cadence() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let eng =
        EngineConfig { estimator: EstimatorKind::Ewma, sync_every: 3, ..EngineConfig::default() };
    let reference = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let forced =
        with_env(&[("GARIBALDI_ESTIMATOR", "ewma"), ("GARIBALDI_SYNC_EVERY", "3")], || {
            smoke_run(&r)
        });
    assert_eq!(reference, forced);
    // Alone (serial default, nothing selecting the parallel engine) the
    // variable configures nothing — but it is still validated.
    let serial = with_env(&[("GARIBALDI_SYNC_EVERY", "3")], || smoke_run(&r));
    assert_eq!(serial, r.run_serial(s.records_per_core, s.warmup_per_core));
}

/// `GARIBALDI_TRAIN_MODE=async` overrides the learned-state training
/// mode of an env-selected parallel engine and reproduces the explicitly
/// configured run exactly. The mode cannot be told apart from sync by
/// the *result* at smoke scale (the deferred install is byte-invisible
/// by construction, and the privatized pair batches only reorder
/// commutative updates here), so the proof that async actually ran is
/// the engine's own accounting: every async sync publishes one barrier
/// late (`publish_lag`), which sync mode never does.
#[test]
fn train_mode_env_overrides_the_mode() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let eng = EngineConfig {
        estimator: EstimatorKind::Ewma,
        sync_every: 1,
        train_mode: TrainMode::Async,
        ..EngineConfig::default()
    };
    let reference = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let forced = with_env(
        &[
            ("GARIBALDI_ESTIMATOR", "ewma"),
            ("GARIBALDI_SYNC_EVERY", "1"),
            ("GARIBALDI_TRAIN_MODE", "async"),
        ],
        || smoke_run(&r),
    );
    assert_eq!(reference, forced);
    // The env-built config really carries the async mode…
    let choice =
        with_env(&[("GARIBALDI_ESTIMATOR", "ewma"), ("GARIBALDI_TRAIN_MODE", "async")], || {
            EngineChoice::from_env_or(EngineChoice::Serial)
        });
    match choice {
        EngineChoice::Parallel(c) => assert_eq!(c.train_mode, TrainMode::Async),
        EngineChoice::Serial => panic!("estimator + train mode must select the parallel engine"),
    }
    // …and the async schedule really ran: syncs published one barrier
    // late, where the sync mode's lag is identically zero.
    let (_, st) = r.run_parallel_stats(s.records_per_core, s.warmup_per_core, &eng);
    assert!(st.learned_syncs > 0, "ewma at sync_every=1 must sync");
    assert_eq!(st.publish_lag, st.learned_syncs, "async publishes one barrier late per sync");
    let (_, st_sync) = r.run_parallel_stats(
        s.records_per_core,
        s.warmup_per_core,
        &EngineConfig { train_mode: TrainMode::Sync, ..eng },
    );
    assert_eq!(st_sync.publish_lag, 0, "sync mode installs at the exporting barrier");
    // Alone (serial default, nothing selecting the parallel engine) the
    // variable configures nothing — but it is still validated.
    let serial = with_env(&[("GARIBALDI_TRAIN_MODE", "async")], || smoke_run(&r));
    assert_eq!(serial, r.run_serial(s.records_per_core, s.warmup_per_core));
}

/// Bare `GARIBALDI_WORKERS` still flips to the parallel engine (the PR-2
/// forcing mechanism CI's parallel-engine leg uses).
#[test]
fn bare_workers_still_selects_parallel() {
    let choice =
        with_env(&[("GARIBALDI_WORKERS", "3")], || EngineChoice::from_env_or(EngineChoice::Serial));
    match choice {
        EngineChoice::Parallel(c) => assert_eq!(c.workers, 3),
        EngineChoice::Serial => panic!("GARIBALDI_WORKERS must select the parallel engine"),
    }
}

/// `GARIBALDI_BARRIER_TIMEOUT_S` arms the barrier watchdog at engine
/// construction: a generous timeout never fires and never changes results
/// (determinism is engine-geometry-only), and malformed values fail
/// loudly on the main thread, naming the variable.
#[test]
fn barrier_timeout_env_is_validated_and_result_invisible() {
    let r = runner();
    let s = ExperimentScale::smoke();
    let eng = EngineConfig::default();
    let reference = r.run_parallel(s.records_per_core, s.warmup_per_core, &eng);
    let timed = with_env(&[("GARIBALDI_BARRIER_TIMEOUT_S", "120")], || {
        r.run_parallel(s.records_per_core, s.warmup_per_core, &eng)
    });
    assert_eq!(reference, timed, "an armed (idle) watchdog never changes results");
    for bad in ["0", "soon", "-5"] {
        let err = with_env(&[("GARIBALDI_BARRIER_TIMEOUT_S", bad)], || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                r.run_parallel(s.records_per_core, s.warmup_per_core, &eng)
            }))
            .expect_err(&format!("GARIBALDI_BARRIER_TIMEOUT_S={bad} must panic"))
        });
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("GARIBALDI_BARRIER_TIMEOUT_S"),
            "panic for {bad} names the variable: {msg:?}"
        );
    }
}

/// Every malformed value fails loudly instead of silently selecting an
/// unintended engine or geometry.
#[test]
fn malformed_values_panic_with_the_variable_name() {
    let cases: [(&str, &str); 9] = [
        ("GARIBALDI_ENGINE", "turbo"),
        ("GARIBALDI_WORKERS", "0"),
        ("GARIBALDI_WORKERS", "banana"),
        ("GARIBALDI_SHARDS", "-1"),
        ("GARIBALDI_EPOCH", "99999999999999999999999999"),
        ("GARIBALDI_ESTIMATOR", "psychic"),
        ("GARIBALDI_SYNC_EVERY", "0"),
        ("GARIBALDI_SYNC_EVERY", "sometimes"),
        ("GARIBALDI_TRAIN_MODE", "eventually"),
    ];
    for (var, val) in cases {
        let err = with_env(&[(var, val)], || {
            std::panic::catch_unwind(|| EngineChoice::from_env_or(EngineChoice::Serial))
                .expect_err(&format!("{var}={val} must panic"))
        });
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains(var), "panic for {var}={val} names the variable: {msg:?}");
    }
}
