//! Hierarchy-level invariants: oracle semantics, partitioning, coherence,
//! and the non-inclusive LLC's behaviour.

use garibaldi_cache::PolicyKind;
use garibaldi_sim::hierarchy::MemoryHierarchy;
use garibaldi_sim::{ExperimentScale, LlcScheme, SimRunner, SystemConfig};
use garibaldi_trace::WorkloadMix;
use garibaldi_types::{CoreId, LineAddr, RwKind, VirtAddr};

fn small_cfg(scheme: LlcScheme) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(&ExperimentScale::smoke(), scheme);
    cfg.cores = 8; // two L2 clusters for the coherence checks
    cfg
}

#[test]
fn i_oracle_hits_after_first_access() {
    let mut cfg = small_cfg(LlcScheme::plain(PolicyKind::Lru));
    cfg.i_oracle = true;
    cfg.l1i_prefetcher = false;
    let mut h = MemoryHierarchy::new(&cfg);
    let core = CoreId::new(0);
    // Fetch many distinct instruction lines so L1/L2 cannot hold them, then
    // refetch: the oracle LLC must serve every one.
    let n = 200_000u64;
    for i in 0..n {
        h.access_instr(core, VirtAddr::new(0x40_0000 + i * 64), LineAddr::new(1 << 20 | i), 0);
    }
    let before = h.llc_stats().i_hits;
    for i in 0..1000 {
        h.access_instr(core, VirtAddr::new(0x40_0000 + i * 64), LineAddr::new(1 << 20 | i), 0);
    }
    let after = h.llc_stats().i_hits;
    assert_eq!(after - before, 1000, "oracle: every refetch hits at the LLC");
}

#[test]
fn partitioning_keeps_masks_disjoint_and_runs() {
    let mut cfg = small_cfg(LlcScheme::plain(PolicyKind::Mockingjay));
    cfg.partition_instr_ways = 2;
    let s = ExperimentScale::smoke();
    let r = SimRunner::new(cfg, WorkloadMix::homogeneous("tpcc", 8), 3)
        .run(s.records_per_core, s.warmup_per_core);
    assert!(r.llc.accesses() > 0);
    // With strict partitioning no QBS guard runs.
    assert_eq!(r.llc.guarded_protections, 0);
    assert_eq!(r.qbs_cycles, 0);
}

#[test]
fn write_invalidates_remote_cluster_copies() {
    let cfg = small_cfg(LlcScheme::plain(PolicyKind::Lru));
    let mut h = MemoryHierarchy::new(&cfg);
    let line = LineAddr::new(0xABCD);
    let pc = VirtAddr::new(0x40_0000);
    // Core 0 (cluster 0) and core 4 (cluster 1) both read the line.
    h.access_data(CoreId::new(0), pc, line, RwKind::Read, 0, None);
    h.access_data(CoreId::new(4), pc, line, RwKind::Read, 0, None);
    assert_eq!(h.invalidations(), 0);
    // Core 0 writes: cluster 1's copy must be invalidated.
    h.access_data(CoreId::new(0), pc, line, RwKind::Write, 0, None);
    assert!(h.invalidations() >= 1, "remote sharer invalidated");
    // Cluster 1 reads again: its L2 must miss (copy was invalidated).
    let l2_hits_before = h.l2_stats().d_hits;
    let l1_before = h.l1_stats().d_hits;
    h.access_data(CoreId::new(4), pc, line, RwKind::Read, 0, None);
    let served_private = h.l2_stats().d_hits > l2_hits_before || h.l1_stats().d_hits > l1_before;
    assert!(!served_private, "invalidated line cannot hit in remote private caches");
}

#[test]
fn dirty_l2_evictions_write_back_to_llc_then_dram() {
    let s = ExperimentScale::smoke();
    let cfg = small_cfg(LlcScheme::plain(PolicyKind::Lru));
    let r = SimRunner::new(cfg, WorkloadMix::homogeneous("ycsb", 8), 3)
        .run(s.records_per_core, s.warmup_per_core);
    assert!(r.llc.writebacks > 0 || r.dram.writes > 0, "writebacks flow downward");
}

#[test]
fn llc_occupancy_never_exceeds_capacity() {
    let cfg = small_cfg(LlcScheme::plain(PolicyKind::Random));
    let mut h = MemoryHierarchy::new(&cfg);
    let pc = VirtAddr::new(0x40_0000);
    for i in 0..200_000u64 {
        let core = CoreId::new((i % 8) as u16);
        h.access_data(core, pc, LineAddr::new(i), RwKind::Read, 0, None);
    }
    let capacity = h.llc().config().sets * h.llc().config().ways;
    assert!(h.llc().occupancy() <= capacity);
}

#[test]
fn prefetched_lines_register_and_get_consumed() {
    let s = ExperimentScale::smoke();
    let cfg = small_cfg(LlcScheme::plain(PolicyKind::Lru));
    let r = SimRunner::new(cfg, WorkloadMix::homogeneous("bwaves", 8), 3)
        .run(s.records_per_core, s.warmup_per_core);
    // The streaming workload exercises next-line/GHB heavily.
    assert!(r.l1.prefetch_fills > 0, "prefetches were issued");
    assert!(r.l1.prefetch_useful > 0, "some prefetches were consumed by demand");
}
