//! Workspace smoke tests: the build itself is the artifact under test.
//!
//! The fast tests exercise one cheap end-to-end path through every layer
//! (types → cache → trace → garibaldi → sim), so a broken re-export or
//! dependency edge fails here even if no behavioral suite happens to cross
//! it. The `#[ignore]`d tests shell out to cargo and assert that *all*
//! targets — including the 16 bench targets — still compile. CI runs the
//! same two cargo commands as direct steps; locally, run
//! `cargo test --test workspace_smoke -- --ignored`.

use std::process::Command;

/// One record flows through every crate of the stack.
#[test]
fn every_layer_is_reachable() {
    use garibaldi::{GaribaldiConfig, GaribaldiModule};
    use garibaldi_cache::{AccessCtx, CacheConfig, PolicyKind, SetAssocCache};
    use garibaldi_mem::{DramConfig, DramModel};
    use garibaldi_trace::{registry, SyntheticProgram, TraceGenerator};
    use garibaldi_types::{CoreId, LineAddr};

    // trace: generate a record from a registry workload.
    let program = SyntheticProgram::build(registry::by_name("tpcc").expect("workload"), 1);
    let rec = TraceGenerator::new(&program, 7).next_record();
    assert!(rec.instrs > 0);

    // cache: miss then hit on the generated PC's line.
    let mut llc = SetAssocCache::new(CacheConfig::new("llc", 64, 8), PolicyKind::Lru);
    let il = LineAddr::new(rec.pc.get() >> 6);
    let ctx = AccessCtx::instr(il, rec.pc.get());
    assert!(!llc.access(&ctx, false));
    llc.insert(il, &ctx, false);
    assert!(llc.access(&ctx, false));

    // mem: a read completes no faster than device latency.
    let mut dram = DramModel::new(DramConfig::default());
    assert!(dram.access(il, 0, false) >= DramConfig::default().access_latency);

    // garibaldi: the pairing flow registers an update.
    let mut g = GaribaldiModule::new(GaribaldiConfig::default(), 2);
    g.on_instr_access(CoreId::new(0), rec.pc, il, false, true);
    g.on_data_access(CoreId::new(0), rec.pc, LineAddr::new(0x9000), true);
    assert_eq!(g.stats().pair_updates, 1);
}

/// A tiny simulation produces finite, positive IPC on every core.
#[test]
fn minimal_simulation_runs() {
    use garibaldi_sim::{ExperimentScale, LlcScheme, SimRunner, SystemConfig};
    use garibaldi_trace::WorkloadMix;

    let scale = ExperimentScale::smoke();
    let cfg = SystemConfig::scaled(&scale, LlcScheme::mockingjay_garibaldi());
    let runner = SimRunner::new(cfg, WorkloadMix::homogeneous("noop", scale.cores), 1);
    let result = runner.run(500, 100);
    let ipc = result.aggregate_ipc();
    assert!(ipc.is_finite() && ipc > 0.0, "IPC {ipc}");
}

fn cargo(args: &[&str]) {
    let out = Command::new(env!("CARGO"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "`cargo {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `cargo check --workspace --all-targets` is clean (CI-run; slow).
#[test]
#[ignore = "compiles the whole workspace; run via CI or --ignored"]
fn all_targets_check() {
    cargo(&["check", "--workspace", "--all-targets"]);
}

/// Every bench target compiles (CI-run; slow).
#[test]
#[ignore = "compiles all benches in release; run via CI or --ignored"]
fn benches_compile() {
    cargo(&["bench", "--no-run"]);
}
