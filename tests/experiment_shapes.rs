//! Shape tests: the qualitative results the paper's figures rest on must
//! hold at test scale. These are the reproduction's regression guard.

use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::{geomean, run_homogeneous};
use garibaldi_sim::{ExperimentScale, LlcScheme, SimRunner, SystemConfig};
use garibaldi_trace::WorkloadMix;

/// A slightly larger scale than `smoke` so populations stabilise. The
/// default suite runs the shapes at a CI-friendly budget (<10 s in debug);
/// the `full_scale_*` variants below re-check them at the original scale
/// behind `#[ignore]` (run via `cargo test -- --ignored`, as the CI heavy
/// leg does).
fn scale() -> ExperimentScale {
    ExperimentScale {
        factor: 0.25,
        cores: 8,
        records_per_core: 6_000,
        warmup_per_core: 1_500,
        color_period: 2_000,
    }
}

/// The original (pre-shrink) scale of this suite.
fn full_scale() -> ExperimentScale {
    ExperimentScale {
        factor: 0.25,
        cores: 8,
        records_per_core: 40_000,
        warmup_per_core: 10_000,
        color_period: 10_000,
    }
}

fn check_server_has_higher_llc_instruction_ratio_than_spec(sc: &ExperimentScale) {
    let server = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), "tpcc", 42);
    let spec = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), "lbm", 42);
    let s = server.llc.instr_access_ratio();
    let p = spec.llc.instr_access_ratio();
    assert!(s > 5.0 * p.max(1e-6) && s > 0.02, "Fig 3(b) shape: server {s:.4} vs SPEC {p:.4}");
}

#[test]
fn server_has_higher_llc_instruction_ratio_than_spec() {
    check_server_has_higher_llc_instruction_ratio_than_spec(&scale());
}

#[test]
#[ignore = "full-scale shape check (~10 s); CI heavy leg runs it"]
fn full_scale_server_has_higher_llc_instruction_ratio_than_spec() {
    check_server_has_higher_llc_instruction_ratio_than_spec(&full_scale());
}

fn check_server_ifetch_cpi_dwarfs_spec(sc: &ExperimentScale) {
    let server = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), "kafka", 42);
    let spec = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), "bwaves", 42);
    assert!(
        server.mean_cpi_stack().ifetch > 4.0 * spec.mean_cpi_stack().ifetch,
        "Fig 1 shape: server ifetch {} vs SPEC {}",
        server.mean_cpi_stack().ifetch,
        spec.mean_cpi_stack().ifetch
    );
}

#[test]
fn server_ifetch_cpi_dwarfs_spec() {
    check_server_ifetch_cpi_dwarfs_spec(&scale());
}

#[test]
#[ignore = "full-scale shape check (~10 s); CI heavy leg runs it"]
fn full_scale_server_ifetch_cpi_dwarfs_spec() {
    check_server_ifetch_cpi_dwarfs_spec(&full_scale());
}

fn check_smart_policies_beat_lru_on_server_geomean(sc: &ExperimentScale) {
    let workloads = ["noop", "tpcc", "twitter", "voter"];
    let mut speedups = Vec::new();
    for w in workloads {
        let lru = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Lru), w, 42);
        let mj = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), w, 42);
        speedups.push(mj.harmonic_mean_ipc() / lru.harmonic_mean_ipc());
    }
    let gm = geomean(&speedups);
    assert!(gm > 0.99, "Fig 12 shape: Mockingjay geomean vs LRU = {gm:.4}");
}

#[test]
fn smart_policies_beat_lru_on_server_geomean() {
    check_smart_policies_beat_lru_on_server_geomean(&scale());
}

#[test]
#[ignore = "full-scale shape check (~20 s); CI heavy leg runs it"]
fn full_scale_smart_policies_beat_lru_on_server_geomean() {
    check_smart_policies_beat_lru_on_server_geomean(&full_scale());
}

fn check_i_oracle_bounds_instruction_side_gains(sc: &ExperimentScale) {
    let w = "verilator";
    let mj = run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), w, 42);
    let mut cfg = SystemConfig::scaled(sc, LlcScheme::plain(PolicyKind::Mockingjay));
    cfg.i_oracle = true;
    let oracle = SimRunner::new(cfg, WorkloadMix::homogeneous(w, sc.cores), 42)
        .run(sc.records_per_core, sc.warmup_per_core);
    assert!(
        oracle.mean_cpi_stack().ifetch <= mj.mean_cpi_stack().ifetch,
        "Fig 3(d): the I-oracle cannot have more ifetch stalls"
    );
    assert!(
        oracle.harmonic_mean_ipc() >= mj.harmonic_mean_ipc() * 0.98,
        "the oracle is an upper bound (within noise)"
    );
}

#[test]
fn i_oracle_bounds_instruction_side_gains() {
    check_i_oracle_bounds_instruction_side_gains(&scale());
}

#[test]
#[ignore = "full-scale shape check (~10 s); CI heavy leg runs it"]
fn full_scale_i_oracle_bounds_instruction_side_gains() {
    check_i_oracle_bounds_instruction_side_gains(&full_scale());
}

fn check_garibaldi_reduces_ifetch_stalls_on_server_aggregate(sc: &ExperimentScale) {
    let workloads = ["tpcc", "noop", "verilator"];
    let mut with_g = 0.0;
    let mut without = 0.0;
    for w in workloads {
        without += run_homogeneous(sc, LlcScheme::plain(PolicyKind::Mockingjay), w, 42)
            .total_ifetch_stall();
        with_g +=
            run_homogeneous(sc, LlcScheme::mockingjay_garibaldi(), w, 42).total_ifetch_stall();
    }
    assert!(
        with_g <= without * 1.03,
        "Fig 13 shape: Garibaldi must not inflate ifetch stalls ({with_g:.0} vs {without:.0})"
    );
}

#[test]
fn garibaldi_reduces_ifetch_stalls_on_server_aggregate() {
    check_garibaldi_reduces_ifetch_stalls_on_server_aggregate(&scale());
}

#[test]
#[ignore = "full-scale shape check (~15 s); CI heavy leg runs it"]
fn full_scale_garibaldi_reduces_ifetch_stalls_on_server_aggregate() {
    check_garibaldi_reduces_ifetch_stalls_on_server_aggregate(&full_scale());
}

fn check_bigger_llc_never_hurts(sc: &ExperimentScale) {
    let mut small_cfg = SystemConfig::scaled(sc, LlcScheme::plain(PolicyKind::Lru));
    let mut big_cfg = small_cfg.clone();
    big_cfg.llc_bytes *= 2;
    small_cfg.llc_bytes /= 2;
    let small = SimRunner::new(small_cfg, WorkloadMix::homogeneous("voter", sc.cores), 42)
        .run(sc.records_per_core, sc.warmup_per_core);
    let big = SimRunner::new(big_cfg, WorkloadMix::homogeneous("voter", sc.cores), 42)
        .run(sc.records_per_core, sc.warmup_per_core);
    assert!(
        big.harmonic_mean_ipc() >= small.harmonic_mean_ipc() * 0.98,
        "Fig 16 sanity: 4x LLC capacity must not lose ({} vs {})",
        big.harmonic_mean_ipc(),
        small.harmonic_mean_ipc()
    );
}

#[test]
fn bigger_llc_never_hurts() {
    check_bigger_llc_never_hurts(&scale());
}

#[test]
#[ignore = "full-scale shape check (~10 s); CI heavy leg runs it"]
fn full_scale_bigger_llc_never_hurts() {
    check_bigger_llc_never_hurts(&full_scale());
}
