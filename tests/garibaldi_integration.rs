//! Garibaldi-specific integration: the pairing → protection → prefetch
//! chain engages on server workloads and the ablation switches do what
//! they say.

use garibaldi::{GaribaldiConfig, ThresholdMode};
use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::run_homogeneous;
use garibaldi_sim::{ExperimentScale, LlcScheme};

fn scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

fn with_cfg(f: impl FnOnce(&mut GaribaldiConfig)) -> LlcScheme {
    let mut g = GaribaldiConfig::default();
    f(&mut g);
    LlcScheme { policy: PolicyKind::Mockingjay, garibaldi: Some(g) }
}

#[test]
fn pair_tracking_engages_on_server_workloads() {
    let r = run_homogeneous(&scale(), LlcScheme::mockingjay_garibaldi(), "tpcc", 42);
    let g = r.garibaldi.unwrap();
    assert!(g.stats.pair_updates > 100, "pair table fed: {}", g.stats.pair_updates);
    assert!(g.helper_hit_rate > 0.3, "helper table deduces IL_PAs: {}", g.helper_hit_rate);
    assert!(g.stats.protections + g.stats.declines > 0, "QBS queries happen during evictions");
}

#[test]
fn all_protect_mode_reduces_llc_instruction_misses() {
    let mj = run_homogeneous(&scale(), LlcScheme::plain(PolicyKind::Mockingjay), "tpcc", 42);
    let allp = run_homogeneous(
        &scale(),
        with_cfg(|g| g.threshold_mode = ThresholdMode::AllProtect),
        "tpcc",
        42,
    );
    assert!(
        allp.llc.i_miss_rate() <= mj.llc.i_miss_rate() + 0.02,
        "protection must not increase the LLC instruction miss rate: {} vs {}",
        allp.llc.i_miss_rate(),
        mj.llc.i_miss_rate()
    );
    assert!(allp.garibaldi.unwrap().stats.protections > 0, "protection fired");
}

#[test]
fn protection_reduces_ifetch_stalls_vs_prefetch_only() {
    let protect = run_homogeneous(
        &scale(),
        with_cfg(|g| g.threshold_mode = ThresholdMode::AllProtect),
        "verilator",
        42,
    );
    let none = run_homogeneous(
        &scale(),
        with_cfg(|g| {
            g.enable_protection = false;
            g.enable_prefetch = false;
        }),
        "verilator",
        42,
    );
    assert!(
        protect.total_ifetch_stall() <= none.total_ifetch_stall() * 1.05,
        "protection should not inflate ifetch stalls: {} vs {}",
        protect.total_ifetch_stall(),
        none.total_ifetch_stall()
    );
}

#[test]
fn disabled_module_matches_zero_stats() {
    let r = run_homogeneous(
        &scale(),
        with_cfg(|g| {
            g.enable_protection = false;
            g.enable_prefetch = false;
        }),
        "noop",
        42,
    );
    let g = r.garibaldi.unwrap();
    assert_eq!(g.stats.protections, 0);
    assert_eq!(g.stats.prefetches_issued, 0);
    // The module still observes and tracks (it is attached), it just never
    // intervenes.
    assert!(g.stats.pair_updates > 0);
}

#[test]
fn pairwise_prefetches_are_issued_and_some_are_useful() {
    let r = run_homogeneous(&scale(), LlcScheme::mockingjay_garibaldi(), "kafka", 42);
    let g = r.garibaldi.unwrap();
    assert!(g.stats.prefetches_issued > 0, "pairwise prefetch fired");
    // Prefetch fills recorded at the LLC.
    assert!(r.llc.prefetch_fills > 0);
}

#[test]
fn fixed_thresholds_order_protection_aggressiveness() {
    let low = run_homogeneous(
        &scale(),
        with_cfg(|g| g.threshold_mode = ThresholdMode::Fixed(-16)),
        "tpcc",
        42,
    );
    let high = run_homogeneous(
        &scale(),
        with_cfg(|g| g.threshold_mode = ThresholdMode::Fixed(16)),
        "tpcc",
        42,
    );
    let pl = low.garibaldi.unwrap().stats.protections;
    let ph = high.garibaldi.unwrap().stats.protections;
    assert!(pl >= ph, "lower threshold must protect at least as much: {pl} vs {ph}");
}

#[test]
fn qbs_latency_is_accounted() {
    let r = run_homogeneous(&scale(), LlcScheme::mockingjay_garibaldi(), "tpcc", 42);
    let g = r.garibaldi.unwrap();
    if g.stats.protections > 0 {
        assert!(r.qbs_cycles > 0, "protections imply query cycles");
    }
}
