//! Quickstart: build a small multi-core system, run a server workload under
//! Mockingjay with and without Garibaldi, and print the headline metrics.
//!
//! Run with: `cargo run --release -p garibaldi-sim --example quickstart`

use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::run_homogeneous;
use garibaldi_sim::{ExperimentScale, LlcScheme};

fn main() {
    // A CI-sized configuration: 4 cores, one-tenth-scale caches/footprints.
    let scale = ExperimentScale::smoke();
    let workload = "tpcc";

    println!(
        "running '{workload}' on {} cores ({} records/core)...",
        scale.cores, scale.records_per_core
    );

    for scheme in [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ] {
        let r = run_homogeneous(&scale, scheme.clone(), workload, 42);
        let stack = r.mean_cpi_stack();
        println!(
            "{:<22} IPC={:.4}  CPI[base={:.2} ifetch={:.2} data={:.2} branch={:.2}]  LLC[I-miss={:.1}% D-miss={:.1}%]",
            scheme.label(),
            r.harmonic_mean_ipc(),
            stack.base,
            stack.ifetch,
            stack.data,
            stack.branch,
            r.llc.i_miss_rate() * 100.0,
            r.llc.d_miss_rate() * 100.0,
        );
        if let Some(g) = &r.garibaldi {
            println!(
                "{:<22} pair updates={}  protections={}  pairwise prefetches={}  final threshold={}",
                "  garibaldi:",
                g.stats.pair_updates,
                g.stats.protections,
                g.stats.prefetches_issued,
                g.final_threshold
            );
        }
    }
}
