//! Exhaustive replacement-policy comparison on one workload: every policy
//! in the crate (LRU, Random, SRRIP, BRRIP, DRRIP, SHiP, Hawkeye,
//! Mockingjay), each with and without the Garibaldi module.
//!
//! Run with: `cargo run --release -p garibaldi-sim --example policy_comparison [workload]`

use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::run_homogeneous;
use garibaldi_sim::{ExperimentScale, LlcScheme};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "noop".to_string());
    // Large enough that footprints stress the LLC and the policies separate.
    let scale = ExperimentScale {
        factor: 0.25,
        cores: 4,
        records_per_core: 30_000,
        warmup_per_core: 8_000,
        color_period: 8_000,
    };
    println!("policy sweep on '{workload}' ({} cores):\n", scale.cores);
    println!("{:<24} {:>8} {:>10} {:>10}", "scheme", "IPC", "LLC-miss%", "ifetchCPI");

    for kind in PolicyKind::ALL {
        for garibaldi in [false, true] {
            let scheme =
                if garibaldi { LlcScheme::with_garibaldi(kind) } else { LlcScheme::plain(kind) };
            let r = run_homogeneous(&scale, scheme.clone(), &workload, 11);
            println!(
                "{:<24} {:>8.4} {:>9.1}% {:>10.3}",
                scheme.label(),
                r.harmonic_mean_ipc(),
                r.llc.miss_rate() * 100.0,
                r.mean_cpi_stack().ifetch,
            );
        }
    }
}
