//! A microscopic walkthrough of the Garibaldi module itself: teach the
//! helper table a PC→frame mapping, heat a pair up with data hits, watch
//! protection flip on, then cool it down and watch the pairwise prefetch
//! take over — the Fig 5 storyboard as executable code.
//!
//! Run with: `cargo run -p garibaldi-sim --example pairwise_prefetch_demo`

use garibaldi::{GaribaldiConfig, GaribaldiModule};
use garibaldi_types::{CoreId, LineAddr, PageNum, VirtAddr, LINE_BYTES};

fn main() {
    let mut g = GaribaldiModule::new(GaribaldiConfig::default(), 1);
    let core = CoreId::new(0);

    // Instruction line C at PC 0xff..f3cd19c00 (the paper's Fig 8 example),
    // mapped to physical frame 0x0d1ab916.
    let pc = VirtAddr::new(0x0fff_ffff_3cd1_9c00);
    let il =
        LineAddr::from_page_parts(PageNum::new(0x0d1a_b916), pc.line_page_offset() / LINE_BYTES);
    // Data lines A and B that C's instructions touch.
    let data_a = LineAddr::new(0x0dee_dbee_f000 >> 6);
    let data_b = LineAddr::new((0x0dee_dbee_f000 >> 6) + 1);

    println!("1. instruction access teaches the helper table (PC→I-PPN):");
    g.on_instr_access(core, pc, il, /*hit=*/ false, /*demand=*/ true);
    println!(
        "   helper hit rate so far: {:.2} (first lookup happens on data access)\n",
        g.helper_hit_rate()
    );

    println!("2. hot data accesses (LLC hits) raise C's miss cost:");
    for i in 0..10 {
        let dl = if i % 2 == 0 { data_a } else { data_b };
        g.on_data_access(core, pc, dl, /*hit=*/ true);
    }
    let entry = g.pair_table().entry_for(il);
    println!("   miss_cost = {} (init 32, +1 per paired hit)", entry.miss_cost.get());
    println!("   threshold = {}", g.threshold());
    println!("   would the QBS query protect C now? {}\n", g.should_protect(il));

    println!("3. unprotected case: a cold pair's miss triggers pairwise prefetch:");
    let cold_pc = VirtAddr::new(0x0040_0000);
    let cold_il = LineAddr::new(0x7777);
    g.on_instr_access(core, cold_pc, cold_il, false, true);
    let cold_dl = LineAddr::new(0x9999);
    for _ in 0..6 {
        g.on_data_access(core, cold_pc, cold_dl, /*hit=*/ false); // cold data
    }
    let cold_il_deduced =
        LineAddr::from_page_parts(cold_il.ppn(), cold_pc.line_page_offset() / LINE_BYTES);
    println!("   protect cold pair? {}", g.should_protect(cold_il_deduced));
    let prefetches = g.on_instr_access(core, cold_pc, cold_il_deduced, /*hit=*/ false, true);
    println!(
        "   pairwise prefetch on its next miss: {prefetches:?} (the recorded cold data line)\n"
    );

    let s = g.stats();
    println!(
        "module stats: pair_updates={} protections={} declines={} prefetches={}",
        s.pair_updates, s.protections, s.declines, s.prefetches_issued
    );
}
