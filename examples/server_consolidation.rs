//! Server consolidation scenario: a socket running a mixed bag of server
//! services (the paper's Fig 11 situation). Compares LLC schemes on a
//! randomly drawn multiprogrammed mix and reports per-core fairness.
//!
//! Run with: `cargo run --release -p garibaldi-sim --example server_consolidation`

use garibaldi_cache::PolicyKind;
use garibaldi_sim::experiment::run_mix;
use garibaldi_sim::{ExperimentScale, LlcScheme};
use garibaldi_trace::random_server_mixes;

fn main() {
    let scale = ExperimentScale::smoke();
    let mix = random_server_mixes(1, scale.cores, 2026).remove(0);
    println!("consolidated mix: {:?}\n", mix.slots);

    let mut baseline_sum = 0.0;
    for scheme in [
        LlcScheme::plain(PolicyKind::Lru),
        LlcScheme::plain(PolicyKind::Hawkeye),
        LlcScheme::plain(PolicyKind::Mockingjay),
        LlcScheme::mockingjay_garibaldi(),
    ] {
        let r = run_mix(&scale, scheme.clone(), &mix, 7);
        let sum = r.ipc_sum();
        if scheme.label() == "LRU" {
            baseline_sum = sum;
        }
        let worst = r.cores.iter().map(|c| c.ipc).fold(f64::INFINITY, f64::min);
        println!(
            "{:<22} throughput(sum IPC)={:.3} ({:+.1}% vs LRU)  slowest core IPC={:.3}",
            scheme.label(),
            sum,
            (sum / baseline_sum - 1.0) * 100.0,
            worst
        );
        for c in &r.cores {
            println!("    {:>14} ipc={:.3} ifetch-stall={:.0}", c.workload, c.ipc, c.stack.ifetch);
        }
    }
}
