//! LLC capacity mini-study (the Fig 16 experiment at example scale): how
//! Mockingjay's and Garibaldi's benefits move as the shared LLC grows.
//!
//! Run with: `cargo run --release -p garibaldi-sim --example llc_capacity_study [workload]`

use garibaldi_cache::PolicyKind;
use garibaldi_sim::{ExperimentScale, LlcScheme, SimRunner, SystemConfig};
use garibaldi_trace::WorkloadMix;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "voter".to_string());
    let scale = ExperimentScale {
        factor: 0.25,
        cores: 4,
        records_per_core: 30_000,
        warmup_per_core: 8_000,
        color_period: 8_000,
    };

    println!("LLC capacity sweep on '{workload}' ({} cores):\n", scale.cores);
    println!("{:>8} {:>10} {:>12} {:>14}", "LLC", "LRU", "Mockingjay", "Mockingjay+G");

    for factor in [0.5f64, 1.0, 1.5, 2.0] {
        let mut ipcs = Vec::new();
        for scheme in [
            LlcScheme::plain(PolicyKind::Lru),
            LlcScheme::plain(PolicyKind::Mockingjay),
            LlcScheme::mockingjay_garibaldi(),
        ] {
            let mut cfg = SystemConfig::scaled(&scale, scheme);
            cfg.llc_bytes = (cfg.llc_bytes as f64 * factor) as u64 / 4096 * 4096;
            let r =
                SimRunner::new(cfg.clone(), WorkloadMix::homogeneous(&workload, scale.cores), 42)
                    .run(scale.records_per_core, scale.warmup_per_core);
            ipcs.push((cfg.llc_bytes, r.harmonic_mean_ipc()));
        }
        println!(
            "{:>6}KB {:>10.4} {:>12.4} {:>14.4}",
            ipcs[0].0 / 1024,
            ipcs[0].1,
            ipcs[1].1,
            ipcs[2].1
        );
    }
    println!("\n(paper shape: the smart policies' edge over LRU narrows as capacity grows,");
    println!(" while Garibaldi keeps a margin where instruction victims persist)");
}
